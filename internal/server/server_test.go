package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datalake"
	"repro/internal/provenance"
	"repro/internal/rerank"
	"repro/internal/verify"
	"repro/internal/workload"
)

// newTestServer builds a server over the Figure 1/4 case lake with exact
// reasoning.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	lake := datalake.New()
	lake.AddSource(datalake.Source{ID: workload.CaseSource, Name: "cases", TrustPrior: 0.9})
	if err := lake.AddTable(workload.USOpen1954Table()); err != nil {
		t.Fatal(err)
	}
	if err := lake.AddTable(workload.USOpen1959Table()); err != nil {
		t.Fatal(err)
	}
	if err := lake.AddTable(workload.OhioDistrictsTable()); err != nil {
		t.Fatal(err)
	}
	if err := lake.AddDocument(workload.MeaganGoodDoc()); err != nil {
		t.Fatal(err)
	}
	indexer, err := core.BuildIndexer(lake, core.DefaultIndexerConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	registry := rerank.NewRegistry(rerank.NewColBERT(indexer.Embedder(), 128))
	agent := verify.NewAgent(verify.NewExactVerifier())
	p, err := core.NewPipeline(lake, indexer, registry, agent,
		provenance.NewStore(), nil, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(p))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestVerifyClaimEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/verify/claim", ClaimRequest{
		ID:   "fig4",
		Text: "In 1954 u.s. open (golf), the cash prize for tommy bolt, fred haas, and ben hogan was 960 in total.",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Verdict != "Refuted" || vr.ID != "fig4" {
		t.Errorf("response = %+v", vr)
	}
	if len(vr.Evidence) == 0 || !strings.Contains(vr.Evidence[0].Explanation, "1710") {
		t.Errorf("evidence = %+v", vr.Evidence)
	}
	if vr.ProvenanceSeq < 0 {
		t.Error("no provenance seq")
	}

	// The provenance endpoint serves the recorded lineage.
	pr, err := http.Get(fmt.Sprintf("%s/v1/provenance?seq=%d", ts.URL, vr.ProvenanceSeq))
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Errorf("provenance status = %d", pr.StatusCode)
	}
	var rec provenance.Record
	if err := json.NewDecoder(pr.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.ObjectID != "fig4" || rec.FinalVerdict != "Refuted" {
		t.Errorf("provenance record = %+v", rec)
	}
}

func TestVerifyTupleEndpoint(t *testing.T) {
	ts := newTestServer(t)
	ohio := workload.OhioDistrictsTable()
	tp, _ := ohio.TupleAt(2)
	resp, body := postJSON(t, ts.URL+"/v1/verify/tuple", TupleRequest{
		ID:      "fig1",
		Caption: tp.Caption,
		Columns: tp.Columns,
		Values:  []string{tp.Values[0], "dave hobson", tp.Values[2]},
		Attr:    "incumbent",
		Kinds:   []string{"tuple"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Verdict != "Refuted" {
		t.Errorf("verdict = %s", vr.Verdict)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	var tables, texts int
	if err := json.Unmarshal(stats["tables"], &tables); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(stats["texts"], &texts); err != nil {
		t.Fatal(err)
	}
	if tables != 3 || texts != 1 {
		t.Errorf("stats = %v", stats)
	}
	// The serving section surfaces the result-cache counters and the
	// admission limiter's configuration.
	var serving struct {
		Pipeline         core.Stats `json:"pipeline"`
		VerifyConc       int        `json:"verify_concurrency"`
		VerifyInFlight   int        `json:"verify_in_flight"`
		VerifyRejections uint64     `json:"verify_rejected"`
	}
	if err := json.Unmarshal(stats["serving"], &serving); err != nil {
		t.Fatalf("serving section: %v", err)
	}
	if serving.VerifyConc <= 0 {
		t.Errorf("verify_concurrency = %d, want a positive default", serving.VerifyConc)
	}

	hr, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", hr.StatusCode)
	}
}

func TestEndpointErrors(t *testing.T) {
	ts := newTestServer(t)

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/verify/claim")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET claim = %d", resp.StatusCode)
	}

	// Malformed JSON.
	resp, err = http.Post(ts.URL+"/v1/verify/claim", "application/json", strings.NewReader("{oops"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON = %d", resp.StatusCode)
	}

	// Missing text.
	resp, _ = postJSON(t, ts.URL+"/v1/verify/claim", ClaimRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty text = %d", resp.StatusCode)
	}

	// Unparseable claim.
	resp, _ = postJSON(t, ts.URL+"/v1/verify/claim", ClaimRequest{Text: "free-form text"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unparseable claim = %d", resp.StatusCode)
	}

	// Unknown kind.
	resp, _ = postJSON(t, ts.URL+"/v1/verify/claim", ClaimRequest{
		Text:  "In x, the a for b was c.",
		Kinds: []string{"hologram"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown kind = %d", resp.StatusCode)
	}

	// Tuple arity mismatch.
	resp, _ = postJSON(t, ts.URL+"/v1/verify/tuple", TupleRequest{
		Columns: []string{"a", "b"}, Values: []string{"1"}, Attr: "a",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("arity mismatch = %d", resp.StatusCode)
	}

	// Tuple with unknown attribute.
	resp, _ = postJSON(t, ts.URL+"/v1/verify/tuple", TupleRequest{
		Columns: []string{"a"}, Values: []string{"1"}, Attr: "ghost",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown attr = %d", resp.StatusCode)
	}

	// Provenance with bad seq.
	pr, err := http.Get(ts.URL + "/v1/provenance?seq=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusBadRequest {
		t.Errorf("bad seq = %d", pr.StatusCode)
	}
	pr, err = http.Get(ts.URL + "/v1/provenance?seq=999")
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusNotFound {
		t.Errorf("missing seq = %d", pr.StatusCode)
	}
}
