package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cdc"
	"repro/internal/core"
	"repro/internal/datalake"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/rerank"
	"repro/internal/verify"
	"repro/internal/workload"
)

// newObsServer builds a case-lake server with direct access to the Server
// value (newTestServer hides it behind httptest), for middleware and
// metrics assertions.
func newObsServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	lake := datalake.New()
	lake.AddSource(datalake.Source{ID: workload.CaseSource, Name: "cases", TrustPrior: 0.9})
	if err := lake.AddTable(workload.USOpen1954Table()); err != nil {
		t.Fatal(err)
	}
	indexer, err := core.BuildIndexer(lake, core.DefaultIndexerConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	registry := rerank.NewRegistry(rerank.NewColBERT(indexer.Embedder(), 128))
	agent := verify.NewAgent(verify.NewExactVerifier())
	p, err := core.NewPipeline(lake, indexer, registry, agent,
		provenance.NewStore(), nil, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(p, opts...)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// scrape fetches /metrics and returns the exposition body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentTypeExposition {
		t.Errorf("Content-Type = %q, want %q", ct, obs.ContentTypeExposition)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestMiddlewareInstrumentsEveryRoute drives one request at every
// registered /v1/* route and asserts the middleware recorded a status
// counter and a latency histogram for each — new routes are instrumented
// by construction, and this test catches any that somehow bypass the
// middleware.
func TestMiddlewareInstrumentsEveryRoute(t *testing.T) {
	_, ts := newObsServer(t)
	routes := []string{
		"/v1/verify/claim", "/v1/verify/tuple", "/v1/verify/batch",
		"/v1/ingest/table", "/v1/ingest/document", "/v1/ingest/triple",
		"/v1/ingest/batch", "/v1/admin/checkpoint",
		cdc.ChangesPath, cdc.CheckpointPath,
		"/v1/lake/version", "/v1/stats", "/v1/provenance", "/v1/healthz",
	}
	for _, route := range routes {
		// GET everywhere: handlers answer 200, 400, 404, or 405 — any
		// status proves the request passed through the middleware.
		resp, err := http.Get(ts.URL + route)
		if err != nil {
			t.Fatalf("GET %s: %v", route, err)
		}
		resp.Body.Close()
	}
	body := scrape(t, ts)
	for _, route := range routes {
		if !strings.Contains(body, fmt.Sprintf(`verifai_http_requests_total{route=%q,status=`, route)) {
			t.Errorf("no status counter for route %s", route)
		}
		if !strings.Contains(body, fmt.Sprintf(`verifai_http_request_duration_seconds_count{route=%q}`, route)) {
			t.Errorf("no latency histogram for route %s", route)
		}
	}
	// Unregistered paths collapse into one bounded "unmatched" label
	// instead of minting a metric series per probe path.
	resp, err := http.Get(ts.URL + "/no/such/path")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if body := scrape(t, ts); !strings.Contains(body, `verifai_http_requests_total{route="unmatched",status="404"}`) {
		t.Error("unregistered path not recorded under the unmatched route")
	}
}

// TestErrorBodiesCarryRequestID asserts every error response names the
// request that failed: the JSON body carries the same request_id the
// X-Request-Id response header does.
func TestErrorBodiesCarryRequestID(t *testing.T) {
	_, ts := newObsServer(t)
	resp, err := http.Post(ts.URL+"/v1/verify/claim", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["error"] == "" {
		t.Error("error body missing error field")
	}
	header := resp.Header.Get("X-Request-Id")
	if header == "" {
		t.Fatal("no X-Request-Id response header")
	}
	if body["request_id"] != header {
		t.Errorf("body request_id = %q, header = %q", body["request_id"], header)
	}
}

// TestRequestIDPropagates asserts a caller-supplied X-Request-Id survives
// into the response header (and therefore into error bodies and logs),
// so one ID can follow a request across a fleet.
func TestRequestIDPropagates(t *testing.T) {
	_, ts := newObsServer(t)
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "caller-chosen-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-chosen-id" {
		t.Errorf("X-Request-Id = %q, want the caller's id", got)
	}
}

// TestFollowerRejectCarriesRequestID asserts the 421 follower write
// rejection keeps the common error shape: error, leader, and request_id.
func TestFollowerRejectCarriesRequestID(t *testing.T) {
	_, ts := newObsServer(t, WithFollower("http://leader:8080"))
	resp, err := http.Post(ts.URL+"/v1/ingest/table", "application/json",
		strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("status = %d, want 421", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["leader"] != "http://leader:8080" {
		t.Errorf("leader = %q", body["leader"])
	}
	if body["error"] == "" || body["request_id"] == "" {
		t.Errorf("421 body missing error or request_id: %v", body)
	}
	if body["request_id"] != resp.Header.Get("X-Request-Id") {
		t.Errorf("request_id mismatch: body %q, header %q",
			body["request_id"], resp.Header.Get("X-Request-Id"))
	}
}

// TestMetricsExpositionLints runs the obs linter over a live scrape after
// real traffic: the hand-rolled exposition must stay parseable by
// Prometheus (HELP/TYPE present, no duplicates, histogram series
// complete).
func TestMetricsExpositionLints(t *testing.T) {
	_, ts := newObsServer(t)
	resp, _ := http.Get(ts.URL + "/v1/healthz")
	if resp != nil {
		resp.Body.Close()
	}
	postBody := strings.NewReader(`{"id":"x","text":"In 1954 u.s. open (golf), the cash prize for tommy bolt was 1500."}`)
	if resp, err := http.Post(ts.URL+"/v1/verify/claim", "application/json", postBody); err == nil {
		resp.Body.Close()
	}
	body := scrape(t, ts)
	for _, err := range obs.Lint(strings.NewReader(body)) {
		t.Errorf("lint: %v", err)
	}
}

// TestDebugRoutes asserts the opt-in debug surface: absent by default,
// and serving pprof + the trace ring when enabled.
func TestDebugRoutes(t *testing.T) {
	_, plain := newObsServer(t)
	resp, err := http.Get(plain.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("debug route without WithDebug = %d, want 404", resp.StatusCode)
	}

	_, dbg := newObsServer(t, WithDebug())
	if resp, err := http.Get(dbg.URL + "/v1/healthz"); err == nil {
		resp.Body.Close()
	}
	resp, err = http.Get(dbg.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces = %d", resp.StatusCode)
	}
	var traces []obs.Trace
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Error("no traces recorded after a request")
	}
	pp, err := http.Get(dbg.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/ = %d", pp.StatusCode)
	}
}
