package server

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// This file is the server's observability middleware: every request gets a
// request ID (propagated from X-Request-Id or assigned), a trace carried
// through its context (so pipeline spans land in /debug/traces), a
// per-route status+latency metric sample, and one structured log line.
// The middleware wraps the whole mux in ServeHTTP, so new routes are
// instrumented by construction — there is no per-handler opt-in to forget.

// newRequestID returns a fresh 16-hex-digit request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; serve anyway with a
		// fixed marker rather than refuse traffic.
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status and size for metrics and logs.
// It forwards Flush (the change feed streams) and exposes Unwrap for
// http.ResponseController, so wrapping loses no capability handlers rely on.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// routePattern resolves the mux pattern the request will dispatch to —
// the metric label, so cardinality is bounded by the registered routes,
// never by raw request paths.
func (s *Server) routePattern(r *http.Request) string {
	if _, pattern := s.mux.Handler(r); pattern != "" {
		return pattern
	}
	return "unmatched"
}

// ServeHTTP implements http.Handler: the observability middleware around
// the API mux. The response header carries X-Request-Id before dispatch,
// so error bodies written by any handler can echo it (see writeError).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.Header.Get("X-Request-Id")
	if id == "" {
		id = newRequestID()
	}
	w.Header().Set("X-Request-Id", id)
	ctx := s.obs.StartTrace(r.Context(), id)
	r = r.WithContext(ctx)
	route := s.routePattern(r)
	sw := &statusWriter{ResponseWriter: w}

	s.mux.ServeHTTP(sw, r)

	status := sw.status
	if status == 0 {
		// Nothing was written (e.g. a streaming handler that sent headers
		// only through the wrapped writer's WriteHeader already set it; a
		// handler that wrote nothing at all implies 200).
		status = http.StatusOK
	}
	dur := time.Since(start)
	s.httpReqs.With(route, strconv.Itoa(status)).Inc()
	s.httpDur.With(route).Observe(dur.Seconds())
	s.obs.FinishTrace(ctx, route, status)
	s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
		slog.String("method", r.Method),
		slog.String("route", route),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Duration("duration", dur),
		slog.Int64("bytes", sw.bytes),
		slog.String("request_id", id),
		slog.Uint64("lake_version", s.pipeline.Lake().Version()),
	)
}
