package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/provenance"
	"repro/internal/rerank"
	"repro/internal/verify"
	"repro/internal/workload"
)

// newSnapshotTestServer builds a server over the case lake and returns the
// pipeline alongside it, so tests can pin snapshots and move the head.
func newSnapshotTestServer(t *testing.T) (*httptest.Server, *core.Pipeline) {
	t.Helper()
	lake := datalake.New()
	lake.AddSource(datalake.Source{ID: workload.CaseSource, Name: "cases", TrustPrior: 0.9})
	if err := lake.AddTable(workload.USOpen1954Table()); err != nil {
		t.Fatal(err)
	}
	if err := lake.AddTable(workload.USOpen1959Table()); err != nil {
		t.Fatal(err)
	}
	if err := lake.AddTable(workload.OhioDistrictsTable()); err != nil {
		t.Fatal(err)
	}
	if err := lake.AddDocument(workload.MeaganGoodDoc()); err != nil {
		t.Fatal(err)
	}
	indexer, err := core.BuildIndexer(lake, core.DefaultIndexerConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	registry := rerank.NewRegistry(rerank.NewColBERT(indexer.Embedder(), 128))
	agent := verify.NewAgent(verify.NewExactVerifier())
	p, err := core.NewPipeline(lake, indexer, registry, agent,
		provenance.NewStore(), nil, core.DefaultPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(p))
	t.Cleanup(ts.Close)
	return ts, p
}

// TestVersionParamContract table-tests the ?version= error contract on the
// verify endpoints: 400 for malformed or zero, 404 ahead of the lake, 409
// for a plausible version nothing retained, 410 below the retention floor
// with the floor named in the body — every error carrying a request_id.
func TestVersionParamContract(t *testing.T) {
	ts, p := newSnapshotTestServer(t)
	// Pin at the seeded head (version 4), then move the head to 10.
	snap, err := p.PinSnapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	pinned := snap.Version()
	if pinned != 4 {
		t.Fatalf("pinned version = %d, want 4", pinned)
	}
	for i := 0; i < 6; i++ {
		if err := p.Lake().AddDocument(&doc.Document{
			ID: fmt.Sprintf("later-%d", i), Title: "later", Text: "later text",
		}); err != nil {
			t.Fatal(err)
		}
	}
	if head := p.Lake().Version(); head != 10 {
		t.Fatalf("head = %d, want 10", head)
	}

	claim := ClaimRequest{
		ID:   "fig4",
		Text: "In 1954 u.s. open (golf), the cash prize for tommy bolt, fred haas, and ben hogan was 960 in total.",
	}
	cases := []struct {
		name    string
		version string
		status  int
	}{
		{"non-numeric", "abc", http.StatusBadRequest},
		{"negative", "-3", http.StatusBadRequest},
		{"zero", "0", http.StatusBadRequest},
		{"fractional", "4.5", http.StatusBadRequest},
		{"ahead-of-lake", "99", http.StatusNotFound},
		{"plausible-not-retained", "7", http.StatusConflict},
		{"below-floor", "2", http.StatusGone},
		{"pinned", "4", http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/verify/claim?version="+tc.version, claim)
			if resp.StatusCode != tc.status {
				t.Fatalf("?version=%s status = %d, want %d (%s)", tc.version, resp.StatusCode, tc.status, body)
			}
			if tc.status == http.StatusOK {
				var vr VerifyResponse
				if err := json.Unmarshal(body, &vr); err != nil {
					t.Fatal(err)
				}
				if vr.AsOfVersion != pinned {
					t.Fatalf("as_of_version = %d, want %d", vr.AsOfVersion, pinned)
				}
				if vr.Verdict != "Refuted" {
					t.Fatalf("pinned verdict = %q, want Refuted", vr.Verdict)
				}
				return
			}
			var e struct {
				Error     string  `json:"error"`
				RequestID string  `json:"request_id"`
				Floor     *uint64 `json:"floor"`
			}
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("error body not JSON: %v (%s)", err, body)
			}
			if e.Error == "" {
				t.Fatalf("error body missing error field: %s", body)
			}
			if e.RequestID == "" {
				t.Fatalf("error body missing request_id: %s", body)
			}
			if tc.status == http.StatusGone {
				if e.Floor == nil || *e.Floor != pinned {
					t.Fatalf("410 body floor = %v, want %d (%s)", e.Floor, pinned, body)
				}
			} else if e.Floor != nil {
				t.Fatalf("non-410 body names a floor: %s", body)
			}
		})
	}

	// The same contract holds on the batch endpoint (probed before
	// admission, so the whole batch fails fast).
	resp, body := postJSON(t, ts.URL+"/v1/verify/batch?version=2", VerifyBatchRequest{
		Items: []VerifyBatchItem{{Type: "claim", ID: claim.ID, Text: claim.Text}},
	})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("batch ?version=2 status = %d, want 410 (%s)", resp.StatusCode, body)
	}
}

// TestSnapshotsEndpoint exercises GET/POST /v1/snapshots: listing, pinning
// the head, verifying at the new pin, and unpinning.
func TestSnapshotsEndpoint(t *testing.T) {
	ts, p := newSnapshotTestServer(t)
	head := p.Lake().Version()

	// Nothing retained yet.
	var list SnapshotsResponse
	getJSON(t, ts.URL+"/v1/snapshots", &list)
	if len(list.Snapshots) != 0 || list.Floor != 0 || list.Head != head {
		t.Fatalf("empty listing = %+v, want no snapshots, floor 0, head %d", list, head)
	}

	// Pin the head over HTTP.
	resp, body := postJSON(t, ts.URL+"/v1/snapshots", SnapshotActionRequest{Action: "pin"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pin status = %d (%s)", resp.StatusCode, body)
	}
	var act SnapshotActionResponse
	if err := json.Unmarshal(body, &act); err != nil {
		t.Fatal(err)
	}
	if act.Status != "pinned" || act.Version != head {
		t.Fatalf("pin response = %+v, want pinned@%d", act, head)
	}

	getJSON(t, ts.URL+"/v1/snapshots", &list)
	if len(list.Snapshots) != 1 || !list.Snapshots[0].Pinned || list.Snapshots[0].Version != head || list.Floor != head {
		t.Fatalf("listing after pin = %+v", list)
	}

	// The pin is immediately readable.
	resp, body = postJSON(t, fmt.Sprintf("%s/v1/verify/claim?version=%d", ts.URL, act.Version), ClaimRequest{
		ID:   "pinned-read",
		Text: "In 1954 u.s. open (golf), the cash prize for tommy bolt, fred haas, and ben hogan was 960 in total.",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned verify status = %d (%s)", resp.StatusCode, body)
	}

	// Malformed actions.
	for _, bad := range []SnapshotActionRequest{
		{Action: "pin", Version: head}, // pin never takes a version
		{Action: "unpin"},              // unpin requires one
		{Action: "rewind", Version: 1}, // unknown action
	} {
		if resp, body := postJSON(t, ts.URL+"/v1/snapshots", bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("action %+v status = %d, want 400 (%s)", bad, resp.StatusCode, body)
		}
	}
	if resp, body := postJSON(t, ts.URL+"/v1/snapshots", SnapshotActionRequest{Action: "unpin", Version: 9999}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unpin of unknown version status = %d, want 404 (%s)", resp.StatusCode, body)
	}

	// Unpin; the snapshot drops back into the retention window (still
	// listed, no longer pinned).
	resp, body = postJSON(t, ts.URL+"/v1/snapshots", SnapshotActionRequest{Action: "unpin", Version: act.Version})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unpin status = %d (%s)", resp.StatusCode, body)
	}
	getJSON(t, ts.URL+"/v1/snapshots", &list)
	if len(list.Snapshots) != 1 || list.Snapshots[0].Pinned {
		t.Fatalf("listing after unpin = %+v", list)
	}
}
