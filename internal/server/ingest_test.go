package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"repro/internal/workload"
)

// getJSON fetches url and decodes the JSON body into out.
func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp
}

func lakeVersion(t *testing.T, baseURL string) uint64 {
	t.Helper()
	var body struct {
		Version uint64 `json:"version"`
	}
	resp := getJSON(t, baseURL+"/v1/lake/version", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/lake/version status = %d", resp.StatusCode)
	}
	return body.Version
}

// TestIngestEndpoints checks the live-lake HTTP surface: all three ingest
// endpoints commit, bump the version, and make the instance verifiable on
// the very next request; duplicates return 409.
func TestIngestEndpoints(t *testing.T) {
	ts := newTestServer(t)
	base := lakeVersion(t, ts.URL)

	// Ingest a table and immediately verify a claim against it.
	resp, body := postJSON(t, ts.URL+"/v1/ingest/table", IngestTableRequest{
		ID:       "open1962",
		Caption:  "1962 open championship",
		Columns:  []string{"player", "prize"},
		Rows:     [][]string{{"arnold palmer", "1400"}, {"kel nagle", "750"}},
		SourceID: workload.CaseSource,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest table status = %d body = %s", resp.StatusCode, body)
	}
	var ack IngestResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Status != "ingested" || ack.Version != base+1 {
		t.Fatalf("ack = %+v, want ingested at version %d", ack, base+1)
	}

	resp, body = postJSON(t, ts.URL+"/v1/verify/claim", ClaimRequest{
		ID:   "live",
		Text: "In 1962 open championship, the prize for arnold palmer was 1400.",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify status = %d body = %s", resp.StatusCode, body)
	}
	var rep VerifyResponse
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != "Verified" {
		t.Fatalf("verdict = %q against freshly ingested table, want Verified (body %s)", rep.Verdict, body)
	}

	// Duplicate table → 409.
	resp, _ = postJSON(t, ts.URL+"/v1/ingest/table", IngestTableRequest{
		ID: "open1962", Caption: "dup", Columns: []string{"a"},
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate ingest status = %d, want 409", resp.StatusCode)
	}

	// Document and triple endpoints.
	resp, body = postJSON(t, ts.URL+"/v1/ingest/document", IngestDocumentRequest{
		ID: "palmer-bio", Title: "Arnold Palmer",
		Text: "Arnold Palmer won the 1962 open championship.", SourceID: workload.CaseSource,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest document status = %d body = %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/ingest/triple", IngestTripleRequest{
		Subject: "arnold palmer", Predicate: "winner of", Object: "1962 open championship",
		SourceID: workload.CaseSource,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest triple status = %d body = %s", resp.StatusCode, body)
	}
	if got := lakeVersion(t, ts.URL); got != base+3 {
		t.Fatalf("lake version = %d, want %d", got, base+3)
	}

	// Validation errors.
	for _, tc := range []struct {
		path string
		body interface{}
	}{
		{"/v1/ingest/table", IngestTableRequest{Caption: "no id", Columns: []string{"a"}}},
		{"/v1/ingest/table", IngestTableRequest{ID: "bad-rows", Columns: []string{"a"}, Rows: [][]string{{"x", "y"}}}},
		{"/v1/ingest/document", IngestDocumentRequest{ID: "no-text"}},
		{"/v1/ingest/triple", IngestTripleRequest{Subject: "s"}},
	} {
		resp, _ := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s with %+v: status = %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
	}
}

// TestIngestBatchEndpoint checks POST /v1/ingest/batch: a mixed batch
// commits in one call, per-item failures (duplicates) surface in the
// per-item results without failing the batch, and every committed item is
// verifiable as soon as the response arrives.
func TestIngestBatchEndpoint(t *testing.T) {
	ts := newTestServer(t)
	base := lakeVersion(t, ts.URL)

	resp, body := postJSON(t, ts.URL+"/v1/ingest/batch", IngestBatchRequest{Items: []IngestBatchItem{
		{Type: "table", ID: "open1971", Caption: "1971 open championship",
			Columns: []string{"player", "prize"}, Rows: [][]string{{"lee trevino", "5500"}},
			SourceID: workload.CaseSource},
		{Type: "document", ID: "trevino-bio", Title: "Lee Trevino",
			Text: "Lee Trevino won the 1971 open championship.", SourceID: workload.CaseSource},
		{Type: "triple", Subject: "lee trevino", Predicate: "nickname", Object: "supermex",
			SourceID: workload.CaseSource},
		{Type: "table", ID: "open1971", Caption: "dup", Columns: []string{"a"}},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch ingest status = %d body = %s", resp.StatusCode, body)
	}
	var ack IngestBatchResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Status != "partial" || ack.Ingested != 3 || ack.Failed != 1 {
		t.Fatalf("ack = %+v, want partial with 3 ingested / 1 failed", ack)
	}
	if ack.Version != base+3 {
		t.Fatalf("batch version = %d, want %d", ack.Version, base+3)
	}
	for i, want := range []uint64{base + 1, base + 2, base + 3} {
		if ack.Results[i].Version != want || ack.Results[i].Error != "" {
			t.Fatalf("result %d = %+v, want version %d", i, ack.Results[i], want)
		}
	}
	if ack.Results[3].Error == "" {
		t.Fatal("duplicate batch item did not report an error")
	}
	if got := lakeVersion(t, ts.URL); got != base+3 {
		t.Fatalf("lake version = %d, want %d", got, base+3)
	}

	// The batch is applied when the response arrives: verify immediately.
	resp, body = postJSON(t, ts.URL+"/v1/verify/claim", ClaimRequest{
		ID:   "batch-live",
		Text: "In 1971 open championship, the prize for lee trevino was 5500.",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify status = %d body = %s", resp.StatusCode, body)
	}
	var rep VerifyResponse
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != "Verified" {
		t.Fatalf("verdict = %q against batch-ingested table, want Verified (body %s)", rep.Verdict, body)
	}

	// A wholly-duplicate batch signals failure through the status code.
	resp, body = postJSON(t, ts.URL+"/v1/ingest/batch", IngestBatchRequest{Items: []IngestBatchItem{
		{Type: "table", ID: "open1971", Caption: "dup again", Columns: []string{"a"}},
	}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("all-duplicate batch status = %d body = %s, want 409", resp.StatusCode, body)
	}

	// Oversized batches are rejected before any prepare work.
	huge := IngestBatchRequest{Items: make([]IngestBatchItem, maxBatchItems+1)}
	for i := range huge.Items {
		huge.Items[i] = IngestBatchItem{Type: "triple", Subject: "s", Predicate: "p", Object: fmt.Sprintf("o%d", i)}
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/ingest/batch", huge); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch status = %d, want 400", resp.StatusCode)
	}

	// Malformed batches are rejected whole with 400.
	for _, req := range []IngestBatchRequest{
		{},
		{Items: []IngestBatchItem{{Type: "widget"}}},
		{Items: []IngestBatchItem{{Type: "table", Caption: "no id", Columns: []string{"a"}}}},
		{Items: []IngestBatchItem{{Type: "document", ID: "no-text"}}},
		{Items: []IngestBatchItem{{Type: "triple", Subject: "s"}}},
		{Items: []IngestBatchItem{{Type: "table", ID: "bad", Columns: []string{"a"}, Rows: [][]string{{"x", "y"}}}}},
	} {
		if resp, _ := postJSON(t, ts.URL+"/v1/ingest/batch", req); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("batch %+v: status = %d, want 400", req, resp.StatusCode)
		}
	}
}

// TestIngestDuringQueries drives concurrent ingest and verification traffic
// through the HTTP layer; under -race this proves the server serves reads
// during writes.
func TestIngestDuringQueries(t *testing.T) {
	ts := newTestServer(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					resp, body := postJSON(t, ts.URL+"/v1/verify/claim", ClaimRequest{
						ID:   "bg",
						Text: "In 1954 u.s. open (golf), the money for tommy bolt was 570.",
					})
					if resp.StatusCode != http.StatusOK {
						t.Errorf("verify during ingest: status %d body %s", resp.StatusCode, body)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 25; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/ingest/table", IngestTableRequest{
			ID:      fmt.Sprintf("live%d", i),
			Caption: fmt.Sprintf("live table %d", i),
			Columns: []string{"k", "v"},
			Rows:    [][]string{{fmt.Sprintf("key%d", i), fmt.Sprintf("value%d", i)}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d body %s", i, resp.StatusCode, body)
		}
	}
	close(stop)
	wg.Wait()
}
