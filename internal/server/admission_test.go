package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datalake"
	"repro/internal/provenance"
	"repro/internal/rerank"
	"repro/internal/verify"
	"repro/internal/workload"
)

// gateVerifier blocks every verification until release is closed, so tests
// can hold the admission limiter saturated deterministically.
type gateVerifier struct {
	started chan struct{}
	release chan struct{}
}

func (v *gateVerifier) Name() string                                  { return "gate" }
func (v *gateVerifier) Supports(verify.Generated, datalake.Kind) bool { return true }
func (v *gateVerifier) Verify(g verify.Generated, ev datalake.Instance) (verify.Result, error) {
	select {
	case v.started <- struct{}{}:
	default:
	}
	<-v.release
	return verify.Result{Verdict: verify.Verified, Verifier: v.Name(), EvidenceID: ev.ID}, nil
}

// slowVerifier sleeps long enough for a short server-side deadline to
// expire mid-verification.
type slowVerifier struct{ delay time.Duration }

func (v *slowVerifier) Name() string                                  { return "slow" }
func (v *slowVerifier) Supports(verify.Generated, datalake.Kind) bool { return true }
func (v *slowVerifier) Verify(g verify.Generated, ev datalake.Instance) (verify.Result, error) {
	time.Sleep(v.delay)
	return verify.Result{Verdict: verify.Verified, Verifier: v.Name(), EvidenceID: ev.ID}, nil
}

// newGatedServer builds a server over the case lake with the given agent
// verifier, result caching off (these tests need every request to reach
// the verifier), and the given server options.
func newGatedServer(t *testing.T, v verify.Verifier, opts ...Option) *httptest.Server {
	t.Helper()
	lake := datalake.New()
	lake.AddSource(datalake.Source{ID: workload.CaseSource, Name: "cases", TrustPrior: 0.9})
	if err := lake.AddTable(workload.USOpen1954Table()); err != nil {
		t.Fatal(err)
	}
	indexer, err := core.BuildIndexer(lake, core.DefaultIndexerConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	registry := rerank.NewRegistry(rerank.NewColBERT(indexer.Embedder(), 128))
	agent := verify.NewAgent(v)
	cfg := core.DefaultPipelineConfig()
	cfg.ResultCache = 0
	p, err := core.NewPipeline(lake, indexer, registry, agent, provenance.NewStore(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(p, opts...))
	t.Cleanup(ts.Close)
	return ts
}

// golfClaimBody is a parseable claim that retrieves the 1954 table.
func golfClaimBody(id string) ClaimRequest {
	return ClaimRequest{ID: id, Text: workload.GolfClaim().Text}
}

// TestVerifyAdmissionSaturation saturates a concurrency-1 server with one
// in-flight verification and asserts the next request is rejected with
// 429 + Retry-After instead of queueing, then admitted again once the
// slot frees.
func TestVerifyAdmissionSaturation(t *testing.T) {
	gate := &gateVerifier{started: make(chan struct{}, 1), release: make(chan struct{})}
	ts := newGatedServer(t, gate, WithVerifyConcurrency(1))

	var wg sync.WaitGroup
	wg.Add(1)
	firstStatus := make(chan int, 1)
	go func() {
		defer wg.Done()
		resp, _ := postJSONErr(ts.URL+"/v1/verify/claim", golfClaimBody("holder"))
		firstStatus <- resp
	}()
	<-gate.started // the slot is now held inside the verifier

	resp, body := postJSON(t, ts.URL+"/v1/verify/claim", golfClaimBody("rejected"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// The rejection is visible in /v1/stats.
	sr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Serving struct {
			Rejected uint64 `json:"verify_rejected"`
			Limit    int    `json:"verify_concurrency"`
		} `json:"serving"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if stats.Serving.Rejected != 1 || stats.Serving.Limit != 1 {
		t.Errorf("serving stats = %+v", stats.Serving)
	}

	close(gate.release)
	wg.Wait()
	if st := <-firstStatus; st != http.StatusOK {
		t.Fatalf("admitted request finished with %d", st)
	}

	// Slot released: the next request is admitted again.
	resp, body = postJSON(t, ts.URL+"/v1/verify/claim", golfClaimBody("after"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d (%s)", resp.StatusCode, body)
	}
}

// postJSONErr is postJSON without t.Fatal, for goroutines.
func postJSONErr(url string, body any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// TestVerifyDeadline asserts a server-side verify timeout aborts the
// pipeline and answers 504.
func TestVerifyDeadline(t *testing.T) {
	ts := newGatedServer(t, &slowVerifier{delay: 100 * time.Millisecond}, WithVerifyTimeout(5*time.Millisecond))
	resp, body := postJSON(t, ts.URL+"/v1/verify/claim", golfClaimBody("deadline"))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
}

// TestBodyLimits asserts oversized bodies answer 413 with a JSON error
// instead of a generic decode 400.
func TestBodyLimits(t *testing.T) {
	ts := newTestServer(t)
	big := fmt.Sprintf(`{"id": "big", "text": %q}`, strings.Repeat("x", maxBodyBytes+1))
	resp, err := http.Post(ts.URL+"/v1/verify/claim", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("413 body is not JSON: %v", err)
	}
	if e["error"] == "" {
		t.Error("413 without error message")
	}

	// A valid document padded past the cap with whitespace is still a size
	// problem (413), not a framing one (400).
	padded := `{"id": "pad", "text": "In x, the a for b was c."}` + strings.Repeat(" ", maxBodyBytes+1)
	resp2, err := http.Post(ts.URL+"/v1/verify/claim", "application/json", strings.NewReader(padded))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("padded body status = %d, want 413", resp2.StatusCode)
	}
}

// TestStrictJSONDecoding asserts client typos fail loudly: unknown fields
// (the "kind" vs "kinds" case) and trailing documents answer 400.
func TestStrictJSONDecoding(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name, path, body string
	}{
		{"unknown field on verify", "/v1/verify/claim", `{"text": "In x, the a for b was c.", "kind": ["table"]}`},
		{"unknown field on ingest", "/v1/ingest/document", `{"id": "d9", "text": "t", "titel": "typo"}`},
		{"second document", "/v1/verify/claim", `{"text": "In x, the a for b was c."} {"text": "again"}`},
		{"trailing garbage", "/v1/ingest/triple", `{"subject": "a", "predicate": "b", "object": "c"} true`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
}

// TestVerifyBatchEndpoint exercises POST /v1/verify/batch: mixed claim and
// tuple items come back in order under one admission slot.
func TestVerifyBatchEndpoint(t *testing.T) {
	ts := newTestServer(t)
	ohio := workload.OhioDistrictsTable()
	tp, _ := ohio.TupleAt(2)
	req := VerifyBatchRequest{Items: []VerifyBatchItem{
		{Type: "claim", ID: "b0", Text: workload.GolfClaim().Text},
		{Type: "tuple", ID: "b1", Caption: tp.Caption, Columns: tp.Columns,
			Values: []string{tp.Values[0], "dave hobson", tp.Values[2]}, Attr: "incumbent", Kinds: []string{"tuple"}},
		{Type: "claim", ID: "b2", Text: workload.GolfClaim().Text},
	}}
	resp, body := postJSON(t, ts.URL+"/v1/verify/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	var br VerifyBatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Status != "verified" || br.Verified != 3 || br.Failed != 0 {
		t.Fatalf("batch response = %+v", br)
	}
	for i, want := range []struct{ id, verdict string }{
		{"b0", "Refuted"}, {"b1", "Refuted"}, {"b2", "Refuted"},
	} {
		res := br.Results[i]
		if res.Report == nil || res.Report.ID != want.id || res.Report.Verdict != want.verdict {
			t.Errorf("item %d = %+v, want id %s verdict %s", i, res, want.id, want.verdict)
		}
	}

	// Item validation failures reject the whole batch, naming the item.
	resp, body = postJSON(t, ts.URL+"/v1/verify/batch", VerifyBatchRequest{Items: []VerifyBatchItem{
		{Type: "claim", Text: workload.GolfClaim().Text},
		{Type: "hologram"},
	}})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "item 1") {
		t.Fatalf("bad item: status %d body %s", resp.StatusCode, body)
	}

	// Empty batches are rejected.
	resp, _ = postJSON(t, ts.URL+"/v1/verify/batch", VerifyBatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", resp.StatusCode)
	}
}

// TestVerifyBatchAmortizesAdmission proves one admitted batch of many
// items coexists with a saturated limiter: with concurrency 1, a batch of
// 4 items holds a single slot (a per-item design would deadlock or reject
// its own items).
func TestVerifyBatchAmortizesAdmission(t *testing.T) {
	ts := newGatedServer(t, verify.NewExactVerifier(), WithVerifyConcurrency(1))
	items := make([]VerifyBatchItem, 4)
	for i := range items {
		items[i] = VerifyBatchItem{Type: "claim", ID: fmt.Sprintf("amortize-%d", i), Text: workload.GolfClaim().Text}
	}
	resp, body := postJSON(t, ts.URL+"/v1/verify/batch", VerifyBatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	var br VerifyBatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Verified != 4 {
		t.Fatalf("batch response = %+v", br)
	}
}
