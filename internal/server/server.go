// Package server exposes a VerifAI pipeline as an HTTP JSON API, the
// deployment surface a downstream user would put in front of the library:
//
//	POST /v1/verify/claim     {"id": "...", "text": "In <caption>, ...", "kinds": ["table","text"]}
//	POST /v1/verify/tuple     {"id": "...", "caption": "...", "columns": [...], "values": [...], "attr": "..."}
//	POST /v1/verify/batch     {"items": [{"type": "claim"|"tuple", ...}, ...]}
//	POST /v1/ingest/table     {"id": "...", "caption": "...", "columns": [...], "rows": [[...]], "source_id": "..."}
//	POST /v1/ingest/document  {"id": "...", "title": "...", "text": "...", "source_id": "..."}
//	POST /v1/ingest/triple    {"subject": "...", "predicate": "...", "object": "...", "source_id": "..."}
//	POST /v1/ingest/batch     {"items": [{"type": "table"|"document"|"triple", ...}, ...]}
//	POST /v1/admin/checkpoint durable checkpoint (404 on in-memory
//	                          deployments, 409 when one is already running);
//	                          non-blocking: ingestion stalls only for the
//	                          short fork phase, not the snapshot write
//	GET  /v1/snapshots        retained time-travel snapshots + floor
//	POST /v1/snapshots        {"action":"pin"} freezes and pins head;
//	                          {"action":"unpin","version":N} releases it
//	                          (verify endpoints accept ?version=N to read
//	                          at a retained snapshot: 400 malformed, 404
//	                          ahead of the lake, 409 not retained, 410
//	                          below the retention floor with the floor in
//	                          the body)
//	GET  /v1/changes          cursor-resumable change feed (CDC + follower
//	                          replication): ?from=N resumes, binary WAL
//	                          frames by default, ?format=sse for SSE,
//	                          410 below the checkpoint floor
//	GET  /v1/replica/checkpoint  latest checkpoint as a tar for follower
//	                          bootstrap (404 before the first checkpoint)
//	GET  /v1/lake/version     current monotonic lake version
//	GET  /v1/stats            lake statistics (+ durability posture when durable)
//	GET  /v1/provenance?seq=N one lineage record
//	GET  /v1/healthz          liveness
//
// The lake behind the pipeline is live: the ingest endpoints index new
// instances incrementally, so the server keeps serving verification reads
// during writes. Responses are flat JSON documents (no internal types
// leak); errors use RFC-7807-ish {"error": "..."} bodies with conventional
// status codes (409 for duplicate ingest IDs, 413 for oversized bodies,
// 429 when the verify admission limiter is saturated, 503 for writes after
// the system began shutting down, 504 for verifications exceeding the
// per-request deadline).
//
// The verify endpoints are admission-controlled: at most a configured
// number of verifications run concurrently (WithVerifyConcurrency /
// -verify-concurrency); a request finding the limiter saturated is
// rejected immediately with 429 and a Retry-After hint instead of queueing
// unboundedly. POST /v1/verify/batch amortizes one admission slot across
// many claims. Each admitted verification runs under the request's context
// (plus an optional server-side deadline), so a disconnected client stops
// burning CPU mid-flight.
//
// Replication-aware serving: the verify endpoints accept ?min_version=N —
// a read-your-writes token carrying an earlier ingest's acknowledged
// version — and wait for the node to apply N before verifying (504 when it
// cannot catch up in time; see changes.go). On a follower (WithFollower)
// the ingest endpoints answer 421 Misdirected Request naming the leader.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/cdc"
	"repro/internal/claims"
	"repro/internal/core"
	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/durable"
	"repro/internal/kg"
	"repro/internal/obs"
	"repro/internal/table"
	"repro/internal/verify"
)

// Request-body size caps. Verify and single-item ingest bodies are small
// JSON documents; the batch endpoints carry many items and get room to
// match their item caps. Oversized bodies answer 413.
const (
	maxBodyBytes      = 1 << 20  // 1 MiB: verify + single-item ingest
	maxBatchBodyBytes = 64 << 20 // 64 MiB: /v1/ingest/batch and /v1/verify/batch
)

// statusClientClosedRequest reports a verification aborted because the
// client went away (nginx's 499 convention); the client never sees it, but
// it keeps access logs honest.
const statusClientClosedRequest = 499

// Server handles the HTTP API over one pipeline.
type Server struct {
	pipeline *core.Pipeline
	mux      *http.ServeMux
	// durStats / checkpoint are set by WithDurability on durable
	// deployments; nil otherwise.
	durStats   func() durable.Stats
	checkpoint func() (uint64, error)
	// pinSnapshot / unpinSnapshot back POST /v1/snapshots. WithSnapshots
	// overrides them (the durable deployment's persisting versions); the
	// defaults pin in memory through the pipeline's registry.
	pinSnapshot   func() (uint64, error)
	unpinSnapshot func(version uint64) error

	// verifySem is the verify admission limiter (nil = unlimited); a slot
	// is held for the duration of one verification (or one whole batch).
	verifySem     chan struct{}
	verifyLimit   int
	verifyTimeout time.Duration
	rejected      atomic.Uint64

	// changeFeed is set by WithChangeFeed and backs GET /v1/changes and
	// GET /v1/replica/checkpoint; nil on deployments without a WAL.
	changeFeed *ChangeFeedConfig
	// leaderURL is set by WithFollower: non-empty marks this server a
	// read-only replica, and ingest endpoints answer 421 pointing here.
	leaderURL string
	// replStats is set by WithReplication and feeds GET /v1/stats.
	replStats func() any

	// obs is the metrics registry behind GET /metrics (set by WithObs to
	// share the system's registry; New creates a private one otherwise, so
	// /metrics always serves). logger receives one structured line per
	// request (default: discard).
	obs    *obs.Registry
	logger *slog.Logger
	debug  bool
	// Pre-resolved metric handles for the middleware and the change feed.
	httpReqs   *obs.CounterVec
	httpDur    *obs.HistogramVec
	cdcRecords *obs.Counter
	cdcActive  *obs.Gauge
}

// Option configures a Server.
type Option func(*Server)

// WithDurability wires a durable deployment's surfaces in: stats feeds the
// durability section of GET /v1/stats, checkpoint backs
// POST /v1/admin/checkpoint.
func WithDurability(stats func() durable.Stats, checkpoint func() (uint64, error)) Option {
	return func(s *Server) {
		s.durStats = stats
		s.checkpoint = checkpoint
	}
}

// WithSnapshots overrides how POST /v1/snapshots pins and unpins — durable
// deployments pass the System methods so pins persist across restarts;
// without it pins live in memory only.
func WithSnapshots(pin func() (uint64, error), unpin func(version uint64) error) Option {
	return func(s *Server) {
		s.pinSnapshot = pin
		s.unpinSnapshot = unpin
	}
}

// WithVerifyConcurrency bounds concurrently admitted verify requests
// (default 4×GOMAXPROCS). Requests beyond the bound answer 429 with a
// Retry-After hint. n <= 0 disables admission control.
func WithVerifyConcurrency(n int) Option {
	return func(s *Server) { s.verifyLimit = n }
}

// WithVerifyTimeout caps each admitted verification's runtime on top of
// the client's own cancellation (default 0: only the request context
// bounds it). Expiry aborts the pipeline mid-flight and answers 504.
func WithVerifyTimeout(d time.Duration) Option {
	return func(s *Server) { s.verifyTimeout = d }
}

// WithObs serves GET /metrics from the given registry instead of a private
// one — pass the system's registry so pipeline, lake, WAL, and HTTP
// metrics share one exposition.
func WithObs(reg *obs.Registry) Option {
	return func(s *Server) { s.obs = reg }
}

// WithLogger emits one structured log line per request (method, route,
// status, latency, request ID, lake version) to the given logger. Default:
// discard.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.logger = l }
}

// WithDebug mounts /debug/pprof/* and /debug/traces on the API mux. Off by
// default: profiles and traces can leak operational detail, so deployments
// opt in (the CLI's -debug-addr serves them on a side listener instead).
func WithDebug() Option {
	return func(s *Server) { s.debug = true }
}

// New returns a server over the given pipeline.
func New(p *core.Pipeline, opts ...Option) *Server {
	s := &Server{pipeline: p, mux: http.NewServeMux(), verifyLimit: 4 * runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(s)
	}
	if s.verifyLimit > 0 {
		s.verifySem = make(chan struct{}, s.verifyLimit)
	}
	if s.pinSnapshot == nil {
		s.pinSnapshot = func() (uint64, error) {
			snap, err := p.PinSnapshot(nil)
			if err != nil {
				return 0, err
			}
			return snap.Version(), nil
		}
	}
	if s.unpinSnapshot == nil {
		s.unpinSnapshot = p.Snapshots().Unpin
	}
	s.mux.HandleFunc("/v1/verify/claim", s.handleVerifyClaim)
	s.mux.HandleFunc("/v1/verify/tuple", s.handleVerifyTuple)
	s.mux.HandleFunc("/v1/verify/batch", s.handleVerifyBatch)
	s.mux.HandleFunc("/v1/ingest/table", s.handleIngestTable)
	s.mux.HandleFunc("/v1/ingest/document", s.handleIngestDocument)
	s.mux.HandleFunc("/v1/ingest/triple", s.handleIngestTriple)
	s.mux.HandleFunc("/v1/ingest/batch", s.handleIngestBatch)
	s.mux.HandleFunc("/v1/admin/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("/v1/snapshots", s.handleSnapshots)
	s.mux.HandleFunc(cdc.ChangesPath, s.handleChanges)
	s.mux.HandleFunc(cdc.CheckpointPath, s.handleReplicaCheckpoint)
	s.mux.HandleFunc("/v1/lake/version", s.handleLakeVersion)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/provenance", s.handleProvenance)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if s.obs == nil {
		s.obs = obs.NewRegistry()
	}
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	if s.debug {
		s.mux.Handle("/debug/", obs.DebugHandler(s.obs))
	}
	s.httpReqs = s.obs.CounterVec("verifai_http_requests_total",
		"HTTP requests served, by mux route and response status.", "route", "status")
	s.httpDur = s.obs.HistogramVec("verifai_http_request_duration_seconds",
		"HTTP request latency by mux route.", "route")
	s.cdcRecords = s.obs.Counter("verifai_cdc_stream_records_total",
		"Change-feed records shipped to subscribers (heartbeats excluded).")
	s.cdcActive = s.obs.Gauge("verifai_cdc_streams_active",
		"Currently connected change-feed streams.")
	s.obs.CounterFunc("verifai_verify_rejected_total",
		"Verify requests rejected by the admission limiter (429).", s.rejected.Load)
	s.obs.GaugeFunc("verifai_verify_in_flight",
		"Verifications currently holding an admission slot.", func() float64 {
			return float64(len(s.verifySem))
		})
	return s
}

// Metrics returns the server's registry (its own unless WithObs shared
// one), for tests and side listeners.
func (s *Server) Metrics() *obs.Registry { return s.obs }

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", obs.ContentTypeExposition)
	_ = s.obs.WritePrometheus(w)
}

// --- request / response DTOs ---

// ClaimRequest is the body of POST /v1/verify/claim.
type ClaimRequest struct {
	// ID stably identifies the generated object (optional; defaults to a
	// server-assigned value).
	ID string `json:"id"`
	// Text is the claim in the template language (required).
	Text string `json:"text"`
	// Kinds restricts evidence modalities ("table", "tuple", "text",
	// "entity"); defaults to tables.
	Kinds []string `json:"kinds,omitempty"`
}

// TupleRequest is the body of POST /v1/verify/tuple.
type TupleRequest struct {
	ID      string   `json:"id"`
	Caption string   `json:"caption"`
	Columns []string `json:"columns"`
	Values  []string `json:"values"`
	// Attr is the attribute under verification (required).
	Attr string `json:"attr"`
	// Kinds restricts evidence modalities; defaults to tuples and texts.
	Kinds []string `json:"kinds,omitempty"`
}

// EvidenceResponse is one verified evidence instance.
type EvidenceResponse struct {
	InstanceID  string  `json:"instance_id"`
	Kind        string  `json:"kind"`
	SourceID    string  `json:"source_id"`
	Verdict     string  `json:"verdict"`
	Explanation string  `json:"explanation"`
	Verifier    string  `json:"verifier"`
	SourceTrust float64 `json:"source_trust"`
	RerankScore float64 `json:"rerank_score"`
}

// VerifyResponse is the outcome of a verification request.
type VerifyResponse struct {
	ID            string             `json:"id"`
	Verdict       string             `json:"verdict"`
	Confidence    float64            `json:"confidence"`
	Evidence      []EvidenceResponse `json:"evidence"`
	ProvenanceSeq int                `json:"provenance_seq"`
	// AsOfVersion is the retained snapshot the verdict was computed against
	// when the request carried ?version=; omitted for head reads.
	AsOfVersion uint64 `json:"as_of_version,omitempty"`
}

// IngestTableRequest is the body of POST /v1/ingest/table.
type IngestTableRequest struct {
	ID       string     `json:"id"`
	Caption  string     `json:"caption"`
	Columns  []string   `json:"columns"`
	Rows     [][]string `json:"rows"`
	SourceID string     `json:"source_id"`
}

// IngestDocumentRequest is the body of POST /v1/ingest/document.
type IngestDocumentRequest struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	Text     string `json:"text"`
	SourceID string `json:"source_id"`
}

// IngestTripleRequest is the body of POST /v1/ingest/triple.
type IngestTripleRequest struct {
	Subject   string `json:"subject"`
	Predicate string `json:"predicate"`
	Object    string `json:"object"`
	SourceID  string `json:"source_id"`
}

// IngestResponse acknowledges one accepted ingestion.
type IngestResponse struct {
	// Status is always "ingested" on success.
	Status string `json:"status"`
	// Version is the lake version the mutation committed as; once a reader
	// observes GET /v1/lake/version >= Version, the instance is indexed.
	Version uint64 `json:"version"`
}

// IngestBatchItem is one mutation in POST /v1/ingest/batch. Type selects
// the modality ("table", "document", or "triple") and which of the
// remaining fields apply (the same fields as the per-modality endpoints).
type IngestBatchItem struct {
	Type string `json:"type"`
	// Table fields.
	ID      string     `json:"id,omitempty"`
	Caption string     `json:"caption,omitempty"`
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	// Document fields (ID shared with tables).
	Title string `json:"title,omitempty"`
	Text  string `json:"text,omitempty"`
	// Triple fields.
	Subject   string `json:"subject,omitempty"`
	Predicate string `json:"predicate,omitempty"`
	Object    string `json:"object,omitempty"`
	// SourceID applies to every modality.
	SourceID string `json:"source_id,omitempty"`
}

// maxBatchItems caps one batch request: AddBatch materializes every item's
// prepared payload (embeddings, term lists) before committing, so the cap
// bounds per-request memory the same way the ingest queue bounds
// queued-event memory. Larger loads split into multiple batches.
const maxBatchItems = 1024

// IngestBatchRequest is the body of POST /v1/ingest/batch.
type IngestBatchRequest struct {
	Items []IngestBatchItem `json:"items"`
}

// IngestBatchItemResult is one item's outcome in an IngestBatchResponse.
type IngestBatchItemResult struct {
	// Version is the lake version the item committed as; 0 means the item
	// never committed (e.g. a duplicate ID). An item with both a version
	// and an error committed to the catalog but failed indexing — do not
	// retry it under the same ID.
	Version uint64 `json:"version,omitempty"`
	// Error explains a rejected or unindexed item.
	Error string `json:"error,omitempty"`
}

// IngestBatchResponse summarizes a batch ingestion. The batch is applied
// when the response arrives: every item with a version is retrievable.
type IngestBatchResponse struct {
	// Status is "ingested" when every item committed, "partial" when some
	// did, "failed" when none did.
	Status string `json:"status"`
	// Ingested and Failed count the items.
	Ingested int `json:"ingested"`
	Failed   int `json:"failed"`
	// Version is the highest lake version the batch committed (0 when
	// nothing committed).
	Version uint64 `json:"version"`
	// Results reports per-item outcomes in request order.
	Results []IngestBatchItemResult `json:"results"`
}

// --- request plumbing ---

// decodeStrict reads one JSON document into dst with the endpoint's body
// cap applied: bodies over limit answer 413, unknown fields (client typos
// like "kind" for "kinds") and trailing garbage (a second JSON document)
// answer 400 — loudly, instead of silently dropping the client's intent.
// On any failure the response is already written and false returned.
func decodeStrict(w http.ResponseWriter, r *http.Request, limit int64, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		// The cap can also trip here (a valid document padded past the
		// limit) — still a size problem, not a framing one.
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "request body must be a single JSON document")
		return false
	}
	return true
}

// admit claims one verify admission slot, answering 429 + Retry-After and
// returning ok=false when the limiter is saturated. The caller must invoke
// release exactly once after the verification finishes.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	if s.verifySem == nil {
		return func() {}, true
	}
	select {
	case s.verifySem <- struct{}{}:
		return func() { <-s.verifySem }, true
	default:
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"verify concurrency limit (%d) saturated; retry shortly", s.verifyLimit)
		return nil, false
	}
}

// verifyContext derives the context an admitted verification runs under:
// the request's own (client disconnect cancels it) plus the server-side
// deadline when configured.
func (s *Server) verifyContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.verifyTimeout > 0 {
		return context.WithTimeout(r.Context(), s.verifyTimeout)
	}
	return r.Context(), func() {}
}

// writeVerifyError maps a pipeline verification error onto a status: the
// server-side deadline expiring is 504 (the verification was cut off, not
// broken), a client disconnect is logged as 499 (nginx convention; the
// client is gone), anything else is a real 500.
func writeVerifyError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "verify: deadline exceeded")
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		writeError(w, statusClientClosedRequest, "verify: client closed request")
	default:
		writeError(w, http.StatusInternalServerError, "verify: %v", err)
	}
}

// --- handlers ---

func (s *Server) handleVerifyClaim(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ClaimRequest
	if !decodeStrict(w, r, maxBodyBytes, &req) {
		return
	}
	g, kinds, err := buildClaimObject(req)
	if err != nil {
		writeError(w, err.status, "%v", err)
		return
	}
	asOf, ok := parseVersionParam(w, r)
	if !ok {
		return
	}
	// Freshness barrier before admission: a waiting request must not hold a
	// verify slot.
	if !s.waitMinVersion(w, r) {
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.verifyContext(r)
	defer cancel()
	report, err2 := s.pipeline.VerifyAsOfCtx(ctx, g, asOf, kinds...)
	if err2 != nil {
		if snapshotResolveError(err2) {
			s.writeSnapshotError(w, asOf, err2)
			return
		}
		writeVerifyError(w, r, err2)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(g.ID, report))
}

func (s *Server) handleVerifyTuple(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req TupleRequest
	if !decodeStrict(w, r, maxBodyBytes, &req) {
		return
	}
	g, kinds, err := buildTupleObject(req)
	if err != nil {
		writeError(w, err.status, "%v", err)
		return
	}
	asOf, ok := parseVersionParam(w, r)
	if !ok {
		return
	}
	if !s.waitMinVersion(w, r) {
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.verifyContext(r)
	defer cancel()
	report, err2 := s.pipeline.VerifyAsOfCtx(ctx, g, asOf, kinds...)
	if err2 != nil {
		if snapshotResolveError(err2) {
			s.writeSnapshotError(w, asOf, err2)
			return
		}
		writeVerifyError(w, r, err2)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(g.ID, report))
}

// reqError pairs a request-validation failure with its response status, so
// the single-item handlers and the batch handler share validation without
// re-deriving status codes.
type reqError struct {
	status int
	msg    string
}

func (e *reqError) Error() string { return e.msg }

func badRequest(format string, args ...interface{}) *reqError {
	return &reqError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// buildClaimObject validates a ClaimRequest into a generated object and its
// evidence kinds.
func buildClaimObject(req ClaimRequest) (verify.Generated, []datalake.Kind, *reqError) {
	if req.Text == "" {
		return verify.Generated{}, nil, badRequest("text is required")
	}
	c, err := claims.Parse(req.Text)
	if err != nil {
		return verify.Generated{}, nil, &reqError{status: http.StatusUnprocessableEntity, msg: fmt.Sprintf("unparseable claim: %v", err)}
	}
	kinds, err := parseKinds(req.Kinds, []datalake.Kind{datalake.KindTable})
	if err != nil {
		return verify.Generated{}, nil, badRequest("%v", err)
	}
	if req.ID == "" {
		req.ID = "http-claim"
	}
	return verify.NewClaimObject(req.ID, c), kinds, nil
}

// buildTupleObject validates a TupleRequest into a generated object and its
// evidence kinds.
func buildTupleObject(req TupleRequest) (verify.Generated, []datalake.Kind, *reqError) {
	if len(req.Columns) == 0 || len(req.Columns) != len(req.Values) {
		return verify.Generated{}, nil, badRequest("columns and values must be non-empty and of equal length")
	}
	if req.Attr == "" {
		return verify.Generated{}, nil, badRequest("attr is required")
	}
	tp := table.Tuple{Caption: req.Caption, Columns: req.Columns, Values: req.Values}
	if _, ok := tp.Value(req.Attr); !ok {
		return verify.Generated{}, nil, badRequest("tuple has no attribute %q", req.Attr)
	}
	kinds, err := parseKinds(req.Kinds, []datalake.Kind{datalake.KindTuple, datalake.KindText})
	if err != nil {
		return verify.Generated{}, nil, badRequest("%v", err)
	}
	if req.ID == "" {
		req.ID = "http-tuple"
	}
	return verify.NewTupleObject(req.ID, tp, req.Attr), kinds, nil
}

// maxVerifyBatchItems caps one verify batch; each item is a full
// verification, so the cap bounds the work one admission slot can claim.
const maxVerifyBatchItems = 256

// verifyBatchParallelism bounds the in-flight verifications within one
// admitted batch (the batch holds a single admission slot; this is its
// internal fan-out, kept modest so one batch cannot monopolize the CPU).
const verifyBatchParallelism = 4

// VerifyBatchItem is one object in POST /v1/verify/batch. Type selects the
// task ("claim" or "tuple") and which of the remaining fields apply (the
// same fields as the single-object endpoints).
type VerifyBatchItem struct {
	Type string `json:"type"`
	ID   string `json:"id,omitempty"`
	// Claim fields.
	Text string `json:"text,omitempty"`
	// Tuple fields.
	Caption string   `json:"caption,omitempty"`
	Columns []string `json:"columns,omitempty"`
	Values  []string `json:"values,omitempty"`
	Attr    string   `json:"attr,omitempty"`
	// Kinds restricts evidence modalities per item; defaults per type.
	Kinds []string `json:"kinds,omitempty"`
}

// VerifyBatchRequest is the body of POST /v1/verify/batch.
type VerifyBatchRequest struct {
	Items []VerifyBatchItem `json:"items"`
}

// VerifyBatchItemResult is one item's outcome: either a report or an error.
type VerifyBatchItemResult struct {
	Report *VerifyResponse `json:"report,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// VerifyBatchResponse summarizes a batch verification in request order.
type VerifyBatchResponse struct {
	// Status is "verified" when every item produced a report, "partial"
	// when some did, "failed" when none did.
	Status string `json:"status"`
	// Verified and Failed count the items.
	Verified int `json:"verified"`
	Failed   int `json:"failed"`
	// Results reports per-item outcomes in request order.
	Results []VerifyBatchItemResult `json:"results"`
}

// handleVerifyBatch verifies many objects under ONE admission slot — the
// amortization that lets a bulk consumer coexist with interactive traffic
// instead of saturating the limiter with per-claim requests. Item
// validation failures reject the whole request (400, first bad item named)
// before any work runs; verification errors after admission are per-item.
func (s *Server) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req VerifyBatchRequest
	if !decodeStrict(w, r, maxBatchBodyBytes, &req) {
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "items must be non-empty")
		return
	}
	if len(req.Items) > maxVerifyBatchItems {
		writeError(w, http.StatusBadRequest, "batch exceeds %d items; split it", maxVerifyBatchItems)
		return
	}
	objects := make([]verify.Generated, len(req.Items))
	itemKinds := make([][]datalake.Kind, len(req.Items))
	for i, it := range req.Items {
		var rerr *reqError
		switch it.Type {
		case "claim":
			objects[i], itemKinds[i], rerr = buildClaimObject(ClaimRequest{ID: it.ID, Text: it.Text, Kinds: it.Kinds})
		case "tuple":
			objects[i], itemKinds[i], rerr = buildTupleObject(TupleRequest{
				ID: it.ID, Caption: it.Caption, Columns: it.Columns, Values: it.Values,
				Attr: it.Attr, Kinds: it.Kinds,
			})
		default:
			rerr = badRequest("unknown type %q (want claim|tuple)", it.Type)
		}
		if rerr != nil {
			writeError(w, rerr.status, "item %d: %v", i, rerr)
			return
		}
	}

	asOf, ok := parseVersionParam(w, r)
	if !ok {
		return
	}
	if asOf != 0 {
		// Resolve the pin once, before admission: an unretained version
		// fails the whole batch fast instead of 256 identical item errors.
		snap, err := s.pipeline.Snapshots().Acquire(asOf)
		if err != nil {
			s.writeSnapshotError(w, asOf, err)
			return
		}
		snap.Release()
	}
	if !s.waitMinVersion(w, r) {
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.verifyContext(r)
	defer cancel()

	// Fan the items across a small worker pool (order-preserving). Kinds
	// vary per item, so this drives VerifyCtx directly rather than
	// VerifyBatchCtx; each item still hits the result cache.
	resp := VerifyBatchResponse{Results: make([]VerifyBatchItemResult, len(req.Items))}
	workers := verifyBatchParallelism
	if workers > len(req.Items) {
		workers = len(req.Items)
	}
	jobs := make(chan int)
	done := make(chan struct{})
	for wkr := 0; wkr < workers; wkr++ {
		go func() {
			for i := range jobs {
				report, err := s.pipeline.VerifyAsOfCtx(ctx, objects[i], asOf, itemKinds[i]...)
				if err != nil {
					resp.Results[i].Error = err.Error()
				} else {
					vr := toResponse(objects[i].ID, report)
					resp.Results[i].Report = &vr
				}
			}
			done <- struct{}{}
		}()
	}
	for i := range req.Items {
		jobs <- i
	}
	close(jobs)
	for wkr := 0; wkr < workers; wkr++ {
		<-done
	}

	for _, res := range resp.Results {
		if res.Error != "" {
			resp.Failed++
		} else {
			resp.Verified++
		}
	}
	switch {
	case resp.Failed == 0:
		resp.Status = "verified"
	case resp.Verified > 0:
		resp.Status = "partial"
	default:
		resp.Status = "failed"
		// A wholly failed batch surfaces the cause through the status code
		// like the single-object endpoints (e.g. every item cut off by the
		// deadline).
		if ctx.Err() != nil {
			writeVerifyError(w, r, ctx.Err())
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// buildTable, buildDocument, and buildTriple validate and construct the
// lake values for the ingest endpoints; the single-item handlers and the
// batch handler share them so their validation rules cannot diverge.
func buildTable(id, caption string, columns []string, rows [][]string, sourceID string) (*table.Table, error) {
	if id == "" {
		return nil, fmt.Errorf("id is required")
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("columns must be non-empty")
	}
	t := table.New(id, caption, columns)
	t.SourceID = sourceID
	for i, row := range rows {
		if err := t.AppendRow(row); err != nil {
			return nil, fmt.Errorf("row %d: %v", i, err)
		}
	}
	return t, nil
}

func buildDocument(id, title, text, sourceID string) (*doc.Document, error) {
	if id == "" {
		return nil, fmt.Errorf("id is required")
	}
	if text == "" {
		return nil, fmt.Errorf("text is required")
	}
	return &doc.Document{ID: id, Title: title, Text: text, SourceID: sourceID}, nil
}

func buildTriple(subject, predicate, object, sourceID string) (*kg.Triple, error) {
	if subject == "" || predicate == "" || object == "" {
		return nil, fmt.Errorf("subject, predicate, and object are required")
	}
	return &kg.Triple{Subject: subject, Predicate: predicate, Object: object, SourceID: sourceID}, nil
}

func (s *Server) handleIngestTable(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.rejectFollowerWrite(w) {
		return
	}
	var req IngestTableRequest
	if !decodeStrict(w, r, maxBodyBytes, &req) {
		return
	}
	t, err := buildTable(req.ID, req.Caption, req.Columns, req.Rows, req.SourceID)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	version, err := s.pipeline.Lake().AddTableVersioned(t)
	s.ingest(w, version, err)
}

func (s *Server) handleIngestDocument(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.rejectFollowerWrite(w) {
		return
	}
	var req IngestDocumentRequest
	if !decodeStrict(w, r, maxBodyBytes, &req) {
		return
	}
	d, err := buildDocument(req.ID, req.Title, req.Text, req.SourceID)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	version, err := s.pipeline.Lake().AddDocumentVersioned(d)
	s.ingest(w, version, err)
}

func (s *Server) handleIngestTriple(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.rejectFollowerWrite(w) {
		return
	}
	var req IngestTripleRequest
	if !decodeStrict(w, r, maxBodyBytes, &req) {
		return
	}
	tr, err := buildTriple(req.Subject, req.Predicate, req.Object, req.SourceID)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	version, err := s.pipeline.Lake().AddTripleVersioned(*tr)
	s.ingest(w, version, err)
}

func (s *Server) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.rejectFollowerWrite(w) {
		return
	}
	var req IngestBatchRequest
	if !decodeStrict(w, r, maxBatchBodyBytes, &req) {
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "items must be non-empty")
		return
	}
	if len(req.Items) > maxBatchItems {
		writeError(w, http.StatusBadRequest, "batch exceeds %d items; split it", maxBatchItems)
		return
	}
	items := make([]datalake.BatchItem, len(req.Items))
	for i, it := range req.Items {
		var err error
		switch it.Type {
		case "table":
			items[i].Table, err = buildTable(it.ID, it.Caption, it.Columns, it.Rows, it.SourceID)
		case "document":
			items[i].Doc, err = buildDocument(it.ID, it.Title, it.Text, it.SourceID)
		case "triple":
			items[i].Triple, err = buildTriple(it.Subject, it.Predicate, it.Object, it.SourceID)
		default:
			err = fmt.Errorf("unknown type %q (want table|document|triple)", it.Type)
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "item %d: %v", i, err)
			return
		}
	}
	results, err := s.pipeline.Lake().AddBatch(items)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, datalake.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "ingest batch: %v", err)
		return
	}
	resp := IngestBatchResponse{Results: make([]IngestBatchItemResult, len(results))}
	allDup := true
	for i, res := range results {
		// Report the version even alongside an error: a committed item
		// whose indexing failed must not look like a rejected one.
		resp.Results[i].Version = res.Version
		if res.Version > resp.Version {
			resp.Version = res.Version
		}
		if res.Err != nil {
			resp.Failed++
			resp.Results[i].Error = res.Err.Error()
			if !errors.Is(res.Err, datalake.ErrDuplicate) {
				allDup = false
			}
			continue
		}
		resp.Ingested++
	}
	// Wholly failed batches signal through the status code like the
	// single-item endpoints (409 when it's all duplicates), so clients
	// keying on HTTP status don't mistake total rejection for success.
	code := http.StatusOK
	switch {
	case resp.Failed == 0:
		resp.Status = "ingested"
	case resp.Ingested > 0:
		resp.Status = "partial"
	default:
		resp.Status = "failed"
		if allDup {
			code = http.StatusConflict
		} else {
			code = http.StatusInternalServerError
		}
	}
	writeJSON(w, code, resp)
}

// ingest finishes an ingest request: the mutation already ran, version/err
// are its outcome. The ingest call waits for the mutation's incremental
// indexing (the pipelined apply stage) before returning, so a 200 response
// means the instance is already retrievable. A closed lake (the system is
// shutting down) maps to 503 so load balancers retry elsewhere.
func (s *Server) ingest(w http.ResponseWriter, version uint64, err error) {
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, datalake.ErrDuplicate):
			status = http.StatusConflict
		case errors.Is(err, datalake.ErrClosed):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "ingest: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Status: "ingested", Version: version})
}

// CheckpointResponse acknowledges POST /v1/admin/checkpoint.
type CheckpointResponse struct {
	Status string `json:"status"`
	// Version is the lake version the checkpoint captured.
	Version uint64 `json:"version"`
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.checkpoint == nil {
		writeError(w, http.StatusNotFound, "this deployment has no data directory (run serve with -data-dir)")
		return
	}
	version, err := s.checkpoint()
	if err != nil {
		// Checkpoints overlap ingestion but not each other: a request that
		// finds one already running conflicts (409) rather than failing —
		// the in-flight checkpoint covers the caller's intent.
		status := http.StatusInternalServerError
		if errors.Is(err, durable.ErrCheckpointInFlight) {
			status = http.StatusConflict
		}
		writeError(w, status, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{Status: "checkpointed", Version: version})
}

func (s *Server) handleLakeVersion(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"version": s.pipeline.Lake().Version()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	stats := s.pipeline.Lake().Stats()
	body := map[string]any{
		"tables":   stats.Tables,
		"tuples":   stats.Tuples,
		"texts":    stats.Docs,
		"triples":  stats.Triples,
		"entities": stats.Entities,
		"sources":  stats.Sources,
		"serving": map[string]any{
			"pipeline":           s.pipeline.Stats(),
			"verify_concurrency": s.verifyLimit,
			"verify_in_flight":   len(s.verifySem),
			"verify_rejected":    s.rejected.Load(),
		},
		"snapshots": map[string]any{
			"retained": len(s.pipeline.Snapshots().List()),
			"floor":    s.pipeline.Snapshots().Floor(),
			"latest":   s.pipeline.Snapshots().Latest(),
		},
	}
	if s.durStats != nil {
		body["durability"] = s.durStats()
	}
	if s.replStats != nil {
		body["replication"] = s.replStats()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	store := s.pipeline.Provenance()
	if store == nil {
		writeError(w, http.StatusNotFound, "provenance recording is disabled")
		return
	}
	seqStr := r.URL.Query().Get("seq")
	seq, err := strconv.Atoi(seqStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "seq must be an integer, got %q", seqStr)
		return
	}
	rec, ok := store.Get(seq)
	if !ok {
		writeError(w, http.StatusNotFound, "no provenance record %d", seq)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// --- helpers ---

// parseKinds maps kind names onto datalake kinds, with a default.
func parseKinds(names []string, def []datalake.Kind) ([]datalake.Kind, error) {
	if len(names) == 0 {
		return def, nil
	}
	out := make([]datalake.Kind, 0, len(names))
	for _, n := range names {
		switch n {
		case "table":
			out = append(out, datalake.KindTable)
		case "tuple":
			out = append(out, datalake.KindTuple)
		case "text":
			out = append(out, datalake.KindText)
		case "entity":
			out = append(out, datalake.KindEntity)
		default:
			return nil, fmt.Errorf("unknown evidence kind %q (want table|tuple|text|entity)", n)
		}
	}
	return out, nil
}

// toResponse flattens a pipeline report into the wire format.
func toResponse(id string, rep core.Report) VerifyResponse {
	resp := VerifyResponse{
		ID:            id,
		Verdict:       rep.Verdict.String(),
		Confidence:    rep.Confidence,
		ProvenanceSeq: rep.ProvenanceSeq,
		AsOfVersion:   rep.AsOfVersion,
		Evidence:      make([]EvidenceResponse, 0, len(rep.Evidence)),
	}
	for _, ev := range rep.Evidence {
		resp.Evidence = append(resp.Evidence, EvidenceResponse{
			InstanceID:  ev.Instance.ID,
			Kind:        ev.Instance.Kind.String(),
			SourceID:    ev.Instance.SourceID,
			Verdict:     ev.Result.Verdict.String(),
			Explanation: ev.Result.Explanation,
			Verifier:    ev.Result.Verifier,
			SourceTrust: ev.SourceTrust,
			RerankScore: ev.RerankScore,
		})
	}
	return resp
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the API's uniform error body:
// {"error": ..., "request_id": ...}. The request ID is read back from the
// response header the middleware set before dispatch, so every handler —
// and every error path — carries it without threading the request through.
func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	body := map[string]string{"error": fmt.Sprintf(format, args...)}
	if id := w.Header().Get("X-Request-Id"); id != "" {
		body["request_id"] = id
	}
	writeJSON(w, status, body)
}
