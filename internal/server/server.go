// Package server exposes a VerifAI pipeline as an HTTP JSON API, the
// deployment surface a downstream user would put in front of the library:
//
//	POST /v1/verify/claim     {"id": "...", "text": "In <caption>, ...", "kinds": ["table","text"]}
//	POST /v1/verify/tuple     {"id": "...", "caption": "...", "columns": [...], "values": [...], "attr": "..."}
//	POST /v1/ingest/table     {"id": "...", "caption": "...", "columns": [...], "rows": [[...]], "source_id": "..."}
//	POST /v1/ingest/document  {"id": "...", "title": "...", "text": "...", "source_id": "..."}
//	POST /v1/ingest/triple    {"subject": "...", "predicate": "...", "object": "...", "source_id": "..."}
//	POST /v1/ingest/batch     {"items": [{"type": "table"|"document"|"triple", ...}, ...]}
//	POST /v1/admin/checkpoint durable checkpoint (404 on in-memory
//	                          deployments, 409 when one is already running);
//	                          non-blocking: ingestion stalls only for the
//	                          short fork phase, not the snapshot write
//	GET  /v1/lake/version     current monotonic lake version
//	GET  /v1/stats            lake statistics (+ durability posture when durable)
//	GET  /v1/provenance?seq=N one lineage record
//	GET  /v1/healthz          liveness
//
// The lake behind the pipeline is live: the ingest endpoints index new
// instances incrementally, so the server keeps serving verification reads
// during writes. Responses are flat JSON documents (no internal types
// leak); errors use RFC-7807-ish {"error": "..."} bodies with conventional
// status codes (409 for duplicate ingest IDs, 503 for writes after the
// system began shutting down).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/claims"
	"repro/internal/core"
	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/durable"
	"repro/internal/kg"
	"repro/internal/table"
	"repro/internal/verify"
)

// Server handles the HTTP API over one pipeline.
type Server struct {
	pipeline *core.Pipeline
	mux      *http.ServeMux
	// durStats / checkpoint are set by WithDurability on durable
	// deployments; nil otherwise.
	durStats   func() durable.Stats
	checkpoint func() (uint64, error)
}

// Option configures a Server.
type Option func(*Server)

// WithDurability wires a durable deployment's surfaces in: stats feeds the
// durability section of GET /v1/stats, checkpoint backs
// POST /v1/admin/checkpoint.
func WithDurability(stats func() durable.Stats, checkpoint func() (uint64, error)) Option {
	return func(s *Server) {
		s.durStats = stats
		s.checkpoint = checkpoint
	}
}

// New returns a server over the given pipeline.
func New(p *core.Pipeline, opts ...Option) *Server {
	s := &Server{pipeline: p, mux: http.NewServeMux()}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("/v1/verify/claim", s.handleVerifyClaim)
	s.mux.HandleFunc("/v1/verify/tuple", s.handleVerifyTuple)
	s.mux.HandleFunc("/v1/ingest/table", s.handleIngestTable)
	s.mux.HandleFunc("/v1/ingest/document", s.handleIngestDocument)
	s.mux.HandleFunc("/v1/ingest/triple", s.handleIngestTriple)
	s.mux.HandleFunc("/v1/ingest/batch", s.handleIngestBatch)
	s.mux.HandleFunc("/v1/admin/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("/v1/lake/version", s.handleLakeVersion)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/provenance", s.handleProvenance)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// --- request / response DTOs ---

// ClaimRequest is the body of POST /v1/verify/claim.
type ClaimRequest struct {
	// ID stably identifies the generated object (optional; defaults to a
	// server-assigned value).
	ID string `json:"id"`
	// Text is the claim in the template language (required).
	Text string `json:"text"`
	// Kinds restricts evidence modalities ("table", "tuple", "text",
	// "entity"); defaults to tables.
	Kinds []string `json:"kinds,omitempty"`
}

// TupleRequest is the body of POST /v1/verify/tuple.
type TupleRequest struct {
	ID      string   `json:"id"`
	Caption string   `json:"caption"`
	Columns []string `json:"columns"`
	Values  []string `json:"values"`
	// Attr is the attribute under verification (required).
	Attr string `json:"attr"`
	// Kinds restricts evidence modalities; defaults to tuples and texts.
	Kinds []string `json:"kinds,omitempty"`
}

// EvidenceResponse is one verified evidence instance.
type EvidenceResponse struct {
	InstanceID  string  `json:"instance_id"`
	Kind        string  `json:"kind"`
	SourceID    string  `json:"source_id"`
	Verdict     string  `json:"verdict"`
	Explanation string  `json:"explanation"`
	Verifier    string  `json:"verifier"`
	SourceTrust float64 `json:"source_trust"`
	RerankScore float64 `json:"rerank_score"`
}

// VerifyResponse is the outcome of a verification request.
type VerifyResponse struct {
	ID            string             `json:"id"`
	Verdict       string             `json:"verdict"`
	Confidence    float64            `json:"confidence"`
	Evidence      []EvidenceResponse `json:"evidence"`
	ProvenanceSeq int                `json:"provenance_seq"`
}

// IngestTableRequest is the body of POST /v1/ingest/table.
type IngestTableRequest struct {
	ID       string     `json:"id"`
	Caption  string     `json:"caption"`
	Columns  []string   `json:"columns"`
	Rows     [][]string `json:"rows"`
	SourceID string     `json:"source_id"`
}

// IngestDocumentRequest is the body of POST /v1/ingest/document.
type IngestDocumentRequest struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	Text     string `json:"text"`
	SourceID string `json:"source_id"`
}

// IngestTripleRequest is the body of POST /v1/ingest/triple.
type IngestTripleRequest struct {
	Subject   string `json:"subject"`
	Predicate string `json:"predicate"`
	Object    string `json:"object"`
	SourceID  string `json:"source_id"`
}

// IngestResponse acknowledges one accepted ingestion.
type IngestResponse struct {
	// Status is always "ingested" on success.
	Status string `json:"status"`
	// Version is the lake version the mutation committed as; once a reader
	// observes GET /v1/lake/version >= Version, the instance is indexed.
	Version uint64 `json:"version"`
}

// IngestBatchItem is one mutation in POST /v1/ingest/batch. Type selects
// the modality ("table", "document", or "triple") and which of the
// remaining fields apply (the same fields as the per-modality endpoints).
type IngestBatchItem struct {
	Type string `json:"type"`
	// Table fields.
	ID      string     `json:"id,omitempty"`
	Caption string     `json:"caption,omitempty"`
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	// Document fields (ID shared with tables).
	Title string `json:"title,omitempty"`
	Text  string `json:"text,omitempty"`
	// Triple fields.
	Subject   string `json:"subject,omitempty"`
	Predicate string `json:"predicate,omitempty"`
	Object    string `json:"object,omitempty"`
	// SourceID applies to every modality.
	SourceID string `json:"source_id,omitempty"`
}

// maxBatchItems caps one batch request: AddBatch materializes every item's
// prepared payload (embeddings, term lists) before committing, so the cap
// bounds per-request memory the same way the ingest queue bounds
// queued-event memory. Larger loads split into multiple batches.
const maxBatchItems = 1024

// IngestBatchRequest is the body of POST /v1/ingest/batch.
type IngestBatchRequest struct {
	Items []IngestBatchItem `json:"items"`
}

// IngestBatchItemResult is one item's outcome in an IngestBatchResponse.
type IngestBatchItemResult struct {
	// Version is the lake version the item committed as; 0 means the item
	// never committed (e.g. a duplicate ID). An item with both a version
	// and an error committed to the catalog but failed indexing — do not
	// retry it under the same ID.
	Version uint64 `json:"version,omitempty"`
	// Error explains a rejected or unindexed item.
	Error string `json:"error,omitempty"`
}

// IngestBatchResponse summarizes a batch ingestion. The batch is applied
// when the response arrives: every item with a version is retrievable.
type IngestBatchResponse struct {
	// Status is "ingested" when every item committed, "partial" when some
	// did, "failed" when none did.
	Status string `json:"status"`
	// Ingested and Failed count the items.
	Ingested int `json:"ingested"`
	Failed   int `json:"failed"`
	// Version is the highest lake version the batch committed (0 when
	// nothing committed).
	Version uint64 `json:"version"`
	// Results reports per-item outcomes in request order.
	Results []IngestBatchItemResult `json:"results"`
}

// --- handlers ---

func (s *Server) handleVerifyClaim(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ClaimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	if req.Text == "" {
		writeError(w, http.StatusBadRequest, "text is required")
		return
	}
	c, err := claims.Parse(req.Text)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "unparseable claim: %v", err)
		return
	}
	kinds, err := parseKinds(req.Kinds, []datalake.Kind{datalake.KindTable})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.ID == "" {
		req.ID = "http-claim"
	}
	report, err := s.pipeline.Verify(verify.NewClaimObject(req.ID, c), kinds...)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "verify: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(req.ID, report))
}

func (s *Server) handleVerifyTuple(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req TupleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	if len(req.Columns) == 0 || len(req.Columns) != len(req.Values) {
		writeError(w, http.StatusBadRequest, "columns and values must be non-empty and of equal length")
		return
	}
	if req.Attr == "" {
		writeError(w, http.StatusBadRequest, "attr is required")
		return
	}
	tp := table.Tuple{Caption: req.Caption, Columns: req.Columns, Values: req.Values}
	if _, ok := tp.Value(req.Attr); !ok {
		writeError(w, http.StatusBadRequest, "tuple has no attribute %q", req.Attr)
		return
	}
	kinds, err := parseKinds(req.Kinds, []datalake.Kind{datalake.KindTuple, datalake.KindText})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.ID == "" {
		req.ID = "http-tuple"
	}
	report, err := s.pipeline.Verify(verify.NewTupleObject(req.ID, tp, req.Attr), kinds...)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "verify: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(req.ID, report))
}

// buildTable, buildDocument, and buildTriple validate and construct the
// lake values for the ingest endpoints; the single-item handlers and the
// batch handler share them so their validation rules cannot diverge.
func buildTable(id, caption string, columns []string, rows [][]string, sourceID string) (*table.Table, error) {
	if id == "" {
		return nil, fmt.Errorf("id is required")
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("columns must be non-empty")
	}
	t := table.New(id, caption, columns)
	t.SourceID = sourceID
	for i, row := range rows {
		if err := t.AppendRow(row); err != nil {
			return nil, fmt.Errorf("row %d: %v", i, err)
		}
	}
	return t, nil
}

func buildDocument(id, title, text, sourceID string) (*doc.Document, error) {
	if id == "" {
		return nil, fmt.Errorf("id is required")
	}
	if text == "" {
		return nil, fmt.Errorf("text is required")
	}
	return &doc.Document{ID: id, Title: title, Text: text, SourceID: sourceID}, nil
}

func buildTriple(subject, predicate, object, sourceID string) (*kg.Triple, error) {
	if subject == "" || predicate == "" || object == "" {
		return nil, fmt.Errorf("subject, predicate, and object are required")
	}
	return &kg.Triple{Subject: subject, Predicate: predicate, Object: object, SourceID: sourceID}, nil
}

func (s *Server) handleIngestTable(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req IngestTableRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	t, err := buildTable(req.ID, req.Caption, req.Columns, req.Rows, req.SourceID)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	version, err := s.pipeline.Lake().AddTableVersioned(t)
	s.ingest(w, version, err)
}

func (s *Server) handleIngestDocument(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req IngestDocumentRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	d, err := buildDocument(req.ID, req.Title, req.Text, req.SourceID)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	version, err := s.pipeline.Lake().AddDocumentVersioned(d)
	s.ingest(w, version, err)
}

func (s *Server) handleIngestTriple(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req IngestTripleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	tr, err := buildTriple(req.Subject, req.Predicate, req.Object, req.SourceID)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	version, err := s.pipeline.Lake().AddTripleVersioned(*tr)
	s.ingest(w, version, err)
}

func (s *Server) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req IngestBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "items must be non-empty")
		return
	}
	if len(req.Items) > maxBatchItems {
		writeError(w, http.StatusBadRequest, "batch exceeds %d items; split it", maxBatchItems)
		return
	}
	items := make([]datalake.BatchItem, len(req.Items))
	for i, it := range req.Items {
		var err error
		switch it.Type {
		case "table":
			items[i].Table, err = buildTable(it.ID, it.Caption, it.Columns, it.Rows, it.SourceID)
		case "document":
			items[i].Doc, err = buildDocument(it.ID, it.Title, it.Text, it.SourceID)
		case "triple":
			items[i].Triple, err = buildTriple(it.Subject, it.Predicate, it.Object, it.SourceID)
		default:
			err = fmt.Errorf("unknown type %q (want table|document|triple)", it.Type)
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "item %d: %v", i, err)
			return
		}
	}
	results, err := s.pipeline.Lake().AddBatch(items)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, datalake.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "ingest batch: %v", err)
		return
	}
	resp := IngestBatchResponse{Results: make([]IngestBatchItemResult, len(results))}
	allDup := true
	for i, res := range results {
		// Report the version even alongside an error: a committed item
		// whose indexing failed must not look like a rejected one.
		resp.Results[i].Version = res.Version
		if res.Version > resp.Version {
			resp.Version = res.Version
		}
		if res.Err != nil {
			resp.Failed++
			resp.Results[i].Error = res.Err.Error()
			if !errors.Is(res.Err, datalake.ErrDuplicate) {
				allDup = false
			}
			continue
		}
		resp.Ingested++
	}
	// Wholly failed batches signal through the status code like the
	// single-item endpoints (409 when it's all duplicates), so clients
	// keying on HTTP status don't mistake total rejection for success.
	code := http.StatusOK
	switch {
	case resp.Failed == 0:
		resp.Status = "ingested"
	case resp.Ingested > 0:
		resp.Status = "partial"
	default:
		resp.Status = "failed"
		if allDup {
			code = http.StatusConflict
		} else {
			code = http.StatusInternalServerError
		}
	}
	writeJSON(w, code, resp)
}

// ingest finishes an ingest request: the mutation already ran, version/err
// are its outcome. The ingest call waits for the mutation's incremental
// indexing (the pipelined apply stage) before returning, so a 200 response
// means the instance is already retrievable. A closed lake (the system is
// shutting down) maps to 503 so load balancers retry elsewhere.
func (s *Server) ingest(w http.ResponseWriter, version uint64, err error) {
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, datalake.ErrDuplicate):
			status = http.StatusConflict
		case errors.Is(err, datalake.ErrClosed):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "ingest: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Status: "ingested", Version: version})
}

// CheckpointResponse acknowledges POST /v1/admin/checkpoint.
type CheckpointResponse struct {
	Status string `json:"status"`
	// Version is the lake version the checkpoint captured.
	Version uint64 `json:"version"`
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.checkpoint == nil {
		writeError(w, http.StatusNotFound, "this deployment has no data directory (run serve with -data-dir)")
		return
	}
	version, err := s.checkpoint()
	if err != nil {
		// Checkpoints overlap ingestion but not each other: a request that
		// finds one already running conflicts (409) rather than failing —
		// the in-flight checkpoint covers the caller's intent.
		status := http.StatusInternalServerError
		if errors.Is(err, durable.ErrCheckpointInFlight) {
			status = http.StatusConflict
		}
		writeError(w, status, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{Status: "checkpointed", Version: version})
}

func (s *Server) handleLakeVersion(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"version": s.pipeline.Lake().Version()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	stats := s.pipeline.Lake().Stats()
	body := map[string]any{
		"tables":   stats.Tables,
		"tuples":   stats.Tuples,
		"texts":    stats.Docs,
		"triples":  stats.Triples,
		"entities": stats.Entities,
		"sources":  stats.Sources,
	}
	if s.durStats != nil {
		body["durability"] = s.durStats()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	store := s.pipeline.Provenance()
	if store == nil {
		writeError(w, http.StatusNotFound, "provenance recording is disabled")
		return
	}
	seqStr := r.URL.Query().Get("seq")
	seq, err := strconv.Atoi(seqStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "seq must be an integer, got %q", seqStr)
		return
	}
	rec, ok := store.Get(seq)
	if !ok {
		writeError(w, http.StatusNotFound, "no provenance record %d", seq)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// --- helpers ---

// parseKinds maps kind names onto datalake kinds, with a default.
func parseKinds(names []string, def []datalake.Kind) ([]datalake.Kind, error) {
	if len(names) == 0 {
		return def, nil
	}
	out := make([]datalake.Kind, 0, len(names))
	for _, n := range names {
		switch n {
		case "table":
			out = append(out, datalake.KindTable)
		case "tuple":
			out = append(out, datalake.KindTuple)
		case "text":
			out = append(out, datalake.KindText)
		case "entity":
			out = append(out, datalake.KindEntity)
		default:
			return nil, fmt.Errorf("unknown evidence kind %q (want table|tuple|text|entity)", n)
		}
	}
	return out, nil
}

// toResponse flattens a pipeline report into the wire format.
func toResponse(id string, rep core.Report) VerifyResponse {
	resp := VerifyResponse{
		ID:            id,
		Verdict:       rep.Verdict.String(),
		Confidence:    rep.Confidence,
		ProvenanceSeq: rep.ProvenanceSeq,
		Evidence:      make([]EvidenceResponse, 0, len(rep.Evidence)),
	}
	for _, ev := range rep.Evidence {
		resp.Evidence = append(resp.Evidence, EvidenceResponse{
			InstanceID:  ev.Instance.ID,
			Kind:        ev.Instance.Kind.String(),
			SourceID:    ev.Instance.SourceID,
			Verdict:     ev.Result.Verdict.String(),
			Explanation: ev.Result.Explanation,
			Verifier:    ev.Result.Verifier,
			SourceTrust: ev.SourceTrust,
			RerankScore: ev.RerankScore,
		})
	}
	return resp
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
