// Package server exposes a VerifAI pipeline as an HTTP JSON API, the
// deployment surface a downstream user would put in front of the library:
//
//	POST /v1/verify/claim     {"id": "...", "text": "In <caption>, ...", "kinds": ["table","text"]}
//	POST /v1/verify/tuple     {"id": "...", "caption": "...", "columns": [...], "values": [...], "attr": "..."}
//	POST /v1/ingest/table     {"id": "...", "caption": "...", "columns": [...], "rows": [[...]], "source_id": "..."}
//	POST /v1/ingest/document  {"id": "...", "title": "...", "text": "...", "source_id": "..."}
//	POST /v1/ingest/triple    {"subject": "...", "predicate": "...", "object": "...", "source_id": "..."}
//	GET  /v1/lake/version     current monotonic lake version
//	GET  /v1/stats            lake statistics
//	GET  /v1/provenance?seq=N one lineage record
//	GET  /v1/healthz          liveness
//
// The lake behind the pipeline is live: the ingest endpoints index new
// instances incrementally, so the server keeps serving verification reads
// during writes. Responses are flat JSON documents (no internal types
// leak); errors use RFC-7807-ish {"error": "..."} bodies with conventional
// status codes (409 for duplicate ingest IDs).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/claims"
	"repro/internal/core"
	"repro/internal/datalake"
	"repro/internal/doc"
	"repro/internal/kg"
	"repro/internal/table"
	"repro/internal/verify"
)

// Server handles the HTTP API over one pipeline.
type Server struct {
	pipeline *core.Pipeline
	mux      *http.ServeMux
}

// New returns a server over the given pipeline.
func New(p *core.Pipeline) *Server {
	s := &Server{pipeline: p, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/verify/claim", s.handleVerifyClaim)
	s.mux.HandleFunc("/v1/verify/tuple", s.handleVerifyTuple)
	s.mux.HandleFunc("/v1/ingest/table", s.handleIngestTable)
	s.mux.HandleFunc("/v1/ingest/document", s.handleIngestDocument)
	s.mux.HandleFunc("/v1/ingest/triple", s.handleIngestTriple)
	s.mux.HandleFunc("/v1/lake/version", s.handleLakeVersion)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/provenance", s.handleProvenance)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// --- request / response DTOs ---

// ClaimRequest is the body of POST /v1/verify/claim.
type ClaimRequest struct {
	// ID stably identifies the generated object (optional; defaults to a
	// server-assigned value).
	ID string `json:"id"`
	// Text is the claim in the template language (required).
	Text string `json:"text"`
	// Kinds restricts evidence modalities ("table", "tuple", "text",
	// "entity"); defaults to tables.
	Kinds []string `json:"kinds,omitempty"`
}

// TupleRequest is the body of POST /v1/verify/tuple.
type TupleRequest struct {
	ID      string   `json:"id"`
	Caption string   `json:"caption"`
	Columns []string `json:"columns"`
	Values  []string `json:"values"`
	// Attr is the attribute under verification (required).
	Attr string `json:"attr"`
	// Kinds restricts evidence modalities; defaults to tuples and texts.
	Kinds []string `json:"kinds,omitempty"`
}

// EvidenceResponse is one verified evidence instance.
type EvidenceResponse struct {
	InstanceID  string  `json:"instance_id"`
	Kind        string  `json:"kind"`
	SourceID    string  `json:"source_id"`
	Verdict     string  `json:"verdict"`
	Explanation string  `json:"explanation"`
	Verifier    string  `json:"verifier"`
	SourceTrust float64 `json:"source_trust"`
	RerankScore float64 `json:"rerank_score"`
}

// VerifyResponse is the outcome of a verification request.
type VerifyResponse struct {
	ID            string             `json:"id"`
	Verdict       string             `json:"verdict"`
	Confidence    float64            `json:"confidence"`
	Evidence      []EvidenceResponse `json:"evidence"`
	ProvenanceSeq int                `json:"provenance_seq"`
}

// IngestTableRequest is the body of POST /v1/ingest/table.
type IngestTableRequest struct {
	ID       string     `json:"id"`
	Caption  string     `json:"caption"`
	Columns  []string   `json:"columns"`
	Rows     [][]string `json:"rows"`
	SourceID string     `json:"source_id"`
}

// IngestDocumentRequest is the body of POST /v1/ingest/document.
type IngestDocumentRequest struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	Text     string `json:"text"`
	SourceID string `json:"source_id"`
}

// IngestTripleRequest is the body of POST /v1/ingest/triple.
type IngestTripleRequest struct {
	Subject   string `json:"subject"`
	Predicate string `json:"predicate"`
	Object    string `json:"object"`
	SourceID  string `json:"source_id"`
}

// IngestResponse acknowledges one accepted ingestion.
type IngestResponse struct {
	// Status is always "ingested" on success.
	Status string `json:"status"`
	// Version is the lake version the mutation committed as; once a reader
	// observes GET /v1/lake/version >= Version, the instance is indexed.
	Version uint64 `json:"version"`
}

// --- handlers ---

func (s *Server) handleVerifyClaim(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ClaimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	if req.Text == "" {
		writeError(w, http.StatusBadRequest, "text is required")
		return
	}
	c, err := claims.Parse(req.Text)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "unparseable claim: %v", err)
		return
	}
	kinds, err := parseKinds(req.Kinds, []datalake.Kind{datalake.KindTable})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.ID == "" {
		req.ID = "http-claim"
	}
	report, err := s.pipeline.Verify(verify.NewClaimObject(req.ID, c), kinds...)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "verify: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(req.ID, report))
}

func (s *Server) handleVerifyTuple(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req TupleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	if len(req.Columns) == 0 || len(req.Columns) != len(req.Values) {
		writeError(w, http.StatusBadRequest, "columns and values must be non-empty and of equal length")
		return
	}
	if req.Attr == "" {
		writeError(w, http.StatusBadRequest, "attr is required")
		return
	}
	tp := table.Tuple{Caption: req.Caption, Columns: req.Columns, Values: req.Values}
	if _, ok := tp.Value(req.Attr); !ok {
		writeError(w, http.StatusBadRequest, "tuple has no attribute %q", req.Attr)
		return
	}
	kinds, err := parseKinds(req.Kinds, []datalake.Kind{datalake.KindTuple, datalake.KindText})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.ID == "" {
		req.ID = "http-tuple"
	}
	report, err := s.pipeline.Verify(verify.NewTupleObject(req.ID, tp, req.Attr), kinds...)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "verify: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(req.ID, report))
}

func (s *Server) handleIngestTable(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req IngestTableRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	if req.ID == "" {
		writeError(w, http.StatusBadRequest, "id is required")
		return
	}
	if len(req.Columns) == 0 {
		writeError(w, http.StatusBadRequest, "columns must be non-empty")
		return
	}
	t := table.New(req.ID, req.Caption, req.Columns)
	t.SourceID = req.SourceID
	for i, row := range req.Rows {
		if err := t.AppendRow(row); err != nil {
			writeError(w, http.StatusBadRequest, "row %d: %v", i, err)
			return
		}
	}
	version, err := s.pipeline.Lake().AddTableVersioned(t)
	s.ingest(w, version, err)
}

func (s *Server) handleIngestDocument(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req IngestDocumentRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	if req.ID == "" {
		writeError(w, http.StatusBadRequest, "id is required")
		return
	}
	if req.Text == "" {
		writeError(w, http.StatusBadRequest, "text is required")
		return
	}
	d := &doc.Document{ID: req.ID, Title: req.Title, Text: req.Text, SourceID: req.SourceID}
	version, err := s.pipeline.Lake().AddDocumentVersioned(d)
	s.ingest(w, version, err)
}

func (s *Server) handleIngestTriple(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req IngestTripleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	if req.Subject == "" || req.Predicate == "" || req.Object == "" {
		writeError(w, http.StatusBadRequest, "subject, predicate, and object are required")
		return
	}
	tr := kg.Triple{Subject: req.Subject, Predicate: req.Predicate, Object: req.Object, SourceID: req.SourceID}
	version, err := s.pipeline.Lake().AddTripleVersioned(tr)
	s.ingest(w, version, err)
}

// ingest finishes an ingest request: the mutation already ran, version/err
// are its outcome. Incremental indexing runs synchronously inside the
// lake's change notification, so a 200 response means the instance is
// already retrievable.
func (s *Server) ingest(w http.ResponseWriter, version uint64, err error) {
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, datalake.ErrDuplicate) {
			status = http.StatusConflict
		}
		writeError(w, status, "ingest: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Status: "ingested", Version: version})
}

func (s *Server) handleLakeVersion(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"version": s.pipeline.Lake().Version()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	stats := s.pipeline.Lake().Stats()
	writeJSON(w, http.StatusOK, map[string]int{
		"tables":   stats.Tables,
		"tuples":   stats.Tuples,
		"texts":    stats.Docs,
		"triples":  stats.Triples,
		"entities": stats.Entities,
		"sources":  stats.Sources,
	})
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	store := s.pipeline.Provenance()
	if store == nil {
		writeError(w, http.StatusNotFound, "provenance recording is disabled")
		return
	}
	seqStr := r.URL.Query().Get("seq")
	seq, err := strconv.Atoi(seqStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "seq must be an integer, got %q", seqStr)
		return
	}
	rec, ok := store.Get(seq)
	if !ok {
		writeError(w, http.StatusNotFound, "no provenance record %d", seq)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// --- helpers ---

// parseKinds maps kind names onto datalake kinds, with a default.
func parseKinds(names []string, def []datalake.Kind) ([]datalake.Kind, error) {
	if len(names) == 0 {
		return def, nil
	}
	out := make([]datalake.Kind, 0, len(names))
	for _, n := range names {
		switch n {
		case "table":
			out = append(out, datalake.KindTable)
		case "tuple":
			out = append(out, datalake.KindTuple)
		case "text":
			out = append(out, datalake.KindText)
		case "entity":
			out = append(out, datalake.KindEntity)
		default:
			return nil, fmt.Errorf("unknown evidence kind %q (want table|tuple|text|entity)", n)
		}
	}
	return out, nil
}

// toResponse flattens a pipeline report into the wire format.
func toResponse(id string, rep core.Report) VerifyResponse {
	resp := VerifyResponse{
		ID:            id,
		Verdict:       rep.Verdict.String(),
		Confidence:    rep.Confidence,
		ProvenanceSeq: rep.ProvenanceSeq,
		Evidence:      make([]EvidenceResponse, 0, len(rep.Evidence)),
	}
	for _, ev := range rep.Evidence {
		resp.Evidence = append(resp.Evidence, EvidenceResponse{
			InstanceID:  ev.Instance.ID,
			Kind:        ev.Instance.Kind.String(),
			SourceID:    ev.Instance.SourceID,
			Verdict:     ev.Result.Verdict.String(),
			Explanation: ev.Result.Explanation,
			Verifier:    ev.Result.Verifier,
			SourceTrust: ev.SourceTrust,
			RerankScore: ev.RerankScore,
		})
	}
	return resp
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
