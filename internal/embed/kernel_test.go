package embed

import (
	"math"
	"testing"

	"repro/internal/detrand"
)

// Scalar reference implementations the unrolled kernels must agree with
// (up to float64 reassociation, hence the relative tolerance).
func refDot(a, b Vector) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func refNorm(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

func refL2Sq(a, b Vector) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// TestKernelsMatchScalarReference sweeps every residual-loop length (the
// unroll handles n%4 tails separately) plus larger sizes, with values
// spanning signs and magnitudes.
func TestKernelsMatchScalarReference(t *testing.T) {
	r := detrand.New(5, "kernels")
	for n := 0; n <= 67; n++ {
		a := make(Vector, n)
		b := make(Vector, n)
		for i := 0; i < n; i++ {
			a[i] = float32(r.NormFloat64() * math.Pow(10, float64(i%7-3)))
			b[i] = float32(r.NormFloat64() * math.Pow(10, float64(i%5-2)))
		}
		if got, want := Dot(a, b), refDot(a, b); !relClose(got, want) {
			t.Errorf("n=%d: Dot = %v, want %v", n, got, want)
		}
		if got, want := Norm(a), refNorm(a); !relClose(got, want) {
			t.Errorf("n=%d: Norm = %v, want %v", n, got, want)
		}
		if got, want := L2Sq(a, b), refL2Sq(a, b); !relClose(got, want) {
			t.Errorf("n=%d: L2Sq = %v, want %v", n, got, want)
		}
		wantCos := 0.0
		if na, nb := refNorm(a), refNorm(b); na != 0 && nb != 0 {
			wantCos = refDot(a, b) / (na * nb)
		}
		if got := Cosine(a, b); !relClose(got, wantCos) {
			t.Errorf("n=%d: Cosine = %v, want %v", n, got, wantCos)
		}
	}
}

func TestKernelEdgeValues(t *testing.T) {
	zero := make(Vector, 8)
	one := Vector{1, 0, 0, 0, 0, 0, 0, 0}
	if got := Cosine(zero, one); got != 0 {
		t.Errorf("Cosine(zero, e1) = %v", got)
	}
	if got := Dot(zero, one); got != 0 {
		t.Errorf("Dot(zero, e1) = %v", got)
	}
	if got := L2Sq(one, one); got != 0 {
		t.Errorf("L2Sq(v, v) = %v", got)
	}
	if got := Norm(one); got != 1 {
		t.Errorf("Norm(e1) = %v", got)
	}
}

func BenchmarkKernels(b *testing.B) {
	r := detrand.New(9, "bench")
	const dim = 128
	x := make(Vector, dim)
	y := make(Vector, dim)
	for i := range x {
		x[i] = float32(r.NormFloat64())
		y[i] = float32(r.NormFloat64())
	}
	b.Run("Dot", func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			s += Dot(x, y)
		}
		_ = s
	})
	b.Run("L2Sq", func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			s += L2Sq(x, y)
		}
		_ = s
	})
	b.Run("Cosine", func(b *testing.B) {
		b.ReportAllocs()
		var s float64
		for i := 0; i < b.N; i++ {
			s += Cosine(x, y)
		}
		_ = s
	})
}
