// Package embed provides the semantic-representation substrate: dense
// vector embeddings for text, tuples, and individual tokens. It stands in
// for the paper's BERT-based tuple-to-vec / text-to-vec encoders.
//
// The embedder is deterministic and corpus-independent: every token maps to
// a fixed pseudo-random Gaussian direction derived by hashing (seed, token),
// and a text embeds as the normalized, frequency-damped sum of its token
// vectors. Semantically related lake items share surface tokens, so related
// items land near each other in the space — which is exactly the property
// the semantic index path needs to exercise the same code shape as
// BERT+Faiss (embed → ANN search → candidates).
package embed

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/detrand"
	"repro/internal/textutil"
)

// Vector is a dense embedding.
type Vector []float32

// The similarity kernels below are the innermost loops of every vector
// search, so they are 4-wide unrolled over four independent accumulators
// (breaking the loop-carried add dependency) with the bounds checks
// hoisted via explicit reslicing. Unrolling reassociates the float64
// summation, so results may differ from a naive loop in the last ULPs —
// every ranking in the repo goes through these same kernels, so rankings
// stay internally consistent.

// Dot returns the inner product of a and b. Panics on dimension mismatch.
func Dot(a, b Vector) float64 {
	if len(a) != len(b) {
		panic("embed: dimension mismatch")
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aa, bb := a[i:i+4:i+4], b[i:i+4:i+4]
		s0 += float64(aa[0]) * float64(bb[0])
		s1 += float64(aa[1]) * float64(bb[1])
		s2 += float64(aa[2]) * float64(bb[2])
		s3 += float64(aa[3]) * float64(bb[3])
	}
	for ; i < len(a); i++ {
		s0 += float64(a[i]) * float64(b[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm returns the Euclidean norm of v.
func Norm(v Vector) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(v); i += 4 {
		vv := v[i : i+4 : i+4]
		s0 += float64(vv[0]) * float64(vv[0])
		s1 += float64(vv[1]) * float64(vv[1])
		s2 += float64(vv[2]) * float64(vv[2])
		s3 += float64(vv[3]) * float64(vv[3])
	}
	for ; i < len(v); i++ {
		s0 += float64(v[i]) * float64(v[i])
	}
	return math.Sqrt((s0 + s1) + (s2 + s3))
}

// Cosine returns the cosine similarity of a and b (0 when either is zero).
func Cosine(a, b Vector) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// L2Sq returns the squared Euclidean distance between a and b.
func L2Sq(a, b Vector) float64 {
	if len(a) != len(b) {
		panic("embed: dimension mismatch")
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aa, bb := a[i:i+4:i+4], b[i:i+4:i+4]
		d0 := float64(aa[0]) - float64(bb[0])
		d1 := float64(aa[1]) - float64(bb[1])
		d2 := float64(aa[2]) - float64(bb[2])
		d3 := float64(aa[3]) - float64(bb[3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// Normalize scales v to unit norm in place. Zero vectors stay zero.
func Normalize(v Vector) {
	n := Norm(v)
	if n == 0 {
		return
	}
	inv := float32(1 / n)
	for i := range v {
		v[i] *= inv
	}
}

// Clone returns a copy of v.
func Clone(v Vector) Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Embedder produces embeddings of a fixed dimension. It is safe for
// concurrent use: the token-vector cache is guarded by a read/write mutex,
// since queries introduce new tokens at search time, not only during index
// construction.
type Embedder struct {
	dim  int
	seed uint64

	mu    sync.RWMutex
	cache map[string]Vector
}

// NewEmbedder returns an embedder of dimension dim seeded by seed.
// Dimension must be positive.
func NewEmbedder(dim int, seed uint64) *Embedder {
	if dim <= 0 {
		panic("embed: non-positive dimension")
	}
	return &Embedder{dim: dim, seed: seed, cache: make(map[string]Vector)}
}

// Dim returns the embedding dimension.
func (e *Embedder) Dim() int { return e.dim }

// TokenVector returns the unit-norm embedding of a single (stemmed) token.
// The same token always maps to the same vector. Callers must not mutate
// the returned vector.
func (e *Embedder) TokenVector(token string) Vector {
	e.mu.RLock()
	v, ok := e.cache[token]
	e.mu.RUnlock()
	if ok {
		return v
	}
	r := detrand.New(e.seed, "token", token)
	v = make(Vector, e.dim)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	Normalize(v)
	e.mu.Lock()
	e.cache[token] = v
	e.mu.Unlock()
	return v
}

// EmbedTokens returns one vector per analyzed token of s, in order, for
// late-interaction (ColBERT-style) scoring. Returns nil for token-free text.
func (e *Embedder) EmbedTokens(s string) []Vector {
	tokens := textutil.TokenizeFiltered(s)
	if len(tokens) == 0 {
		return nil
	}
	out := make([]Vector, len(tokens))
	for i, t := range tokens {
		out[i] = e.TokenVector(t)
	}
	return out
}

// EmbedText returns the document-level embedding of s: the sum of token
// vectors with sub-linear (sqrt) frequency damping, normalized to unit
// length. Damping prevents one repeated token from dominating, mirroring
// TF-saturation in learned encoders.
func (e *Embedder) EmbedText(s string) Vector {
	tokens := textutil.TokenizeFiltered(s)
	out := make(Vector, e.dim)
	if len(tokens) == 0 {
		return out
	}
	freq := make(map[string]float64, len(tokens))
	for _, t := range tokens {
		freq[t]++
	}
	// Accumulate in sorted token order: float addition is not associative,
	// and map iteration order would make embeddings bitwise nondeterministic.
	uniq := make([]string, 0, len(freq))
	for t := range freq {
		uniq = append(uniq, t)
	}
	sort.Strings(uniq)
	for _, t := range uniq {
		w := float32(math.Sqrt(freq[t]))
		tv := e.TokenVector(t)
		for i := range out {
			out[i] += w * tv[i]
		}
	}
	Normalize(out)
	return out
}

// embedSlots bounds the extra goroutines all concurrent EmbedTexts calls
// may spawn, process-wide, to GOMAXPROCS: nested pools (e.g. a batch
// ingest's per-item prepare workers each embedding a multi-row table)
// degrade to inline work instead of oversubscribing the scheduler.
var embedSlots = make(chan struct{}, runtime.GOMAXPROCS(0))

// EmbedTexts embeds a batch of texts on a bounded worker pool (workers <= 0
// means GOMAXPROCS), returning one vector per text in order. This is the
// batch entry point the pipelined ingest path uses to fan embedding work
// across cores before the lake's write lock is taken. The calling
// goroutine always participates, so progress never depends on acquiring a
// worker slot.
func (e *Embedder) EmbedTexts(texts []string, workers int) []Vector {
	out := make([]Vector, len(texts))
	if len(texts) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(texts) {
		workers = len(texts)
	}
	// Tiny batches embed inline: goroutine setup would outweigh the work,
	// and callers already inside a worker pool (batch-ingest prepare) get
	// their parallelism across items, not within one small item.
	if workers <= 1 || len(texts) < 4 {
		for i, s := range texts {
			out[i] = e.EmbedText(s)
		}
		return out
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(texts) {
				return
			}
			out[i] = e.EmbedText(texts[i])
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ { // worker 0 is the caller
		select {
		case embedSlots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-embedSlots }()
				work()
			}()
			continue
		default:
		}
		break // slots exhausted: the caller and acquired workers finish the rest
	}
	work()
	wg.Wait()
	return out
}

// EmbedTuple embeds a serialized tuple: the caption, column names, and cell
// values ("tuple-to-vec" in the paper). Column names are included so tuples
// from same-schema tables cluster.
func (e *Embedder) EmbedTuple(caption string, columns, values []string) Vector {
	var parts []string
	if caption != "" {
		parts = append(parts, caption)
	}
	parts = append(parts, columns...)
	parts = append(parts, values...)
	joined := ""
	for i, p := range parts {
		if i > 0 {
			joined += " "
		}
		joined += p
	}
	return e.EmbedText(joined)
}
