package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorOps(t *testing.T) {
	a := Vector{1, 0, 0}
	b := Vector{0, 1, 0}
	if Dot(a, b) != 0 {
		t.Error("Dot orthogonal != 0")
	}
	if Dot(a, a) != 1 {
		t.Error("Dot self != 1")
	}
	if Cosine(a, a) != 1 {
		t.Error("Cosine self != 1")
	}
	if Cosine(a, b) != 0 {
		t.Error("Cosine orthogonal != 0")
	}
	if L2Sq(a, b) != 2 {
		t.Error("L2Sq != 2")
	}
	if Norm(Vector{3, 4}) != 5 {
		t.Error("Norm != 5")
	}
	zero := Vector{0, 0, 0}
	if Cosine(a, zero) != 0 {
		t.Error("Cosine with zero vector != 0")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Dot":  func() { Dot(Vector{1}, Vector{1, 2}) },
		"L2Sq": func() { L2Sq(Vector{1}, Vector{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	Normalize(v)
	if math.Abs(Norm(v)-1) > 1e-6 {
		t.Errorf("Normalize: norm = %v", Norm(v))
	}
	zero := Vector{0, 0}
	Normalize(zero)
	if zero[0] != 0 || zero[1] != 0 {
		t.Error("Normalize mutated zero vector")
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2}
	c := Clone(v)
	c[0] = 9
	if v[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestNewEmbedderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEmbedder(0) did not panic")
		}
	}()
	NewEmbedder(0, 1)
}

func TestTokenVectorDeterministic(t *testing.T) {
	e1 := NewEmbedder(32, 7)
	e2 := NewEmbedder(32, 7)
	a := e1.TokenVector("golf")
	b := e2.TokenVector("golf")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("token vectors differ across embedders with same seed")
		}
	}
	c := NewEmbedder(32, 8).TokenVector("golf")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("token vectors identical across different seeds")
	}
}

func TestTokenVectorUnitNorm(t *testing.T) {
	e := NewEmbedder(64, 1)
	for _, tok := range []string{"golf", "district", "money", "x"} {
		if n := Norm(e.TokenVector(tok)); math.Abs(n-1) > 1e-6 {
			t.Errorf("TokenVector(%q) norm = %v", tok, n)
		}
	}
}

func TestTokenVectorsNearOrthogonal(t *testing.T) {
	// Distinct tokens in a moderately high dimension should be nearly
	// orthogonal (|cos| < 0.5 is a very loose bound at dim 128).
	e := NewEmbedder(128, 1)
	tokens := []string{"golf", "election", "climate", "company", "album"}
	for i := range tokens {
		for j := i + 1; j < len(tokens); j++ {
			c := Cosine(e.TokenVector(tokens[i]), e.TokenVector(tokens[j]))
			if math.Abs(c) > 0.5 {
				t.Errorf("tokens %q/%q cosine %v", tokens[i], tokens[j], c)
			}
		}
	}
}

func TestEmbedText(t *testing.T) {
	e := NewEmbedder(64, 1)
	v := e.EmbedText("golf tournament prize money")
	if math.Abs(Norm(v)-1) > 1e-6 {
		t.Errorf("EmbedText norm = %v", Norm(v))
	}
	empty := e.EmbedText("")
	if Norm(empty) != 0 {
		t.Error("EmbedText(\"\") is not zero")
	}
	// Stopword-only text embeds to zero.
	stop := e.EmbedText("the of and is")
	if Norm(stop) != 0 {
		t.Error("stopword-only text is not zero")
	}
}

func TestEmbedTextSimilarityOrdering(t *testing.T) {
	e := NewEmbedder(128, 1)
	q := e.EmbedText("golf tournament springfield prize money")
	related := e.EmbedText("the springfield golf open had record prize money")
	unrelated := e.EmbedText("monthly precipitation and record low temperatures")
	if Cosine(q, related) <= Cosine(q, unrelated) {
		t.Errorf("related %v <= unrelated %v", Cosine(q, related), Cosine(q, unrelated))
	}
}

func TestEmbedTokens(t *testing.T) {
	e := NewEmbedder(32, 1)
	vecs := e.EmbedTokens("golf prize the")
	if len(vecs) != 2 { // "the" filtered
		t.Fatalf("EmbedTokens = %d vectors", len(vecs))
	}
	if e.EmbedTokens("") != nil {
		t.Error("EmbedTokens empty != nil")
	}
}

func TestEmbedTuple(t *testing.T) {
	e := NewEmbedder(64, 1)
	v1 := e.EmbedTuple("1954 open", []string{"player", "money"}, []string{"tommy bolt", "570"})
	v2 := e.EmbedTuple("1954 open", []string{"player", "money"}, []string{"tommy bolt", "570"})
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("EmbedTuple not deterministic")
		}
	}
	v3 := e.EmbedTuple("2001 season", []string{"week", "opponent"}, []string{"1", "riverton comets"})
	if Cosine(v1, v3) > Cosine(v1, v2) {
		t.Error("different tuples more similar than identical tuples")
	}
}

func TestFrequencyDamping(t *testing.T) {
	// Repeating a token must not dominate: sqrt damping keeps the rare
	// token's contribution visible.
	e := NewEmbedder(128, 1)
	spam := e.EmbedText("golf golf golf golf golf golf golf golf treasure")
	tv := e.TokenVector("treasur") // stemmed form of "treasure"
	if Dot(spam, tv) <= 0.05 {
		t.Errorf("rare token drowned out: dot = %v", Dot(spam, tv))
	}
}

func TestEmbedQuickProperties(t *testing.T) {
	e := NewEmbedder(32, 3)
	f := func(s string) bool {
		v := e.EmbedText(s)
		if len(v) != 32 {
			return false
		}
		n := Norm(v)
		// Either zero (no tokens) or unit.
		return n == 0 || math.Abs(n-1) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmbedTextsMatchesEmbedText(t *testing.T) {
	// The batch entry point must produce bitwise-identical vectors to the
	// single-text path, in order, at every worker count.
	e := NewEmbedder(64, 7)
	texts := make([]string, 17)
	for i := range texts {
		texts[i] = "document " + string(rune('a'+i)) + " about golf prize money records"
	}
	want := make([]Vector, len(texts))
	for i, s := range texts {
		want[i] = e.EmbedText(s)
	}
	for _, workers := range []int{0, 1, 4, 32} {
		got := e.EmbedTexts(texts, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: got %d vectors, want %d", workers, len(got), len(want))
		}
		for i := range want {
			for d := range want[i] {
				if got[i][d] != want[i][d] {
					t.Fatalf("workers=%d: vector %d differs at dim %d", workers, i, d)
				}
			}
		}
	}
	if out := e.EmbedTexts(nil, 4); len(out) != 0 {
		t.Fatalf("EmbedTexts(nil) = %v, want empty", out)
	}
}
