package invindex

import (
	"bytes"
	"fmt"
	"math"

	"repro/internal/binfmt"
)

// staticSeg is the immutable base tier of a two-tier index: a binfmt
// snapshot served directly from its (typically mmap'd) columns. Documents
// and postings in the base are never rewritten — deletions are tracked in
// the owning Index's baseDeleted bitmap, and new documents land in the
// mutable delta tier. Ordinals [0, n) are base documents; the delta's
// ordinals follow at n.
//
// Column layout (see staticColumns):
//
//	meta     JSON: k1/b, doc/term/pair counts, total length
//	ids      string column, ordinal -> external ID (insertion order)
//	lengths  int32[n] token counts
//	idsort   uint32[n] ordinals sorted by ID, for binary-search lookups
//	terms    string column, sorted distinct terms
//	postidx  uint32[t+1] pair-range starts per term
//	postings int32[2p] interleaved (doc, freq) pairs
type staticSeg struct {
	r *binfmt.Reader // pins the mapping for as long as the segment lives

	k1, b    float64
	n        int // document count
	totalLen int64

	ids     binfmt.StringCol
	lengths []int32
	idsort  []uint32
	terms   binfmt.StringCol
	postIdx []uint32
	posts   []int32
}

// staticMeta is the JSON "meta" section of a BM25 snapshot.
type staticMeta struct {
	Family   string  `json:"family"`
	K1       float64 `json:"k1"`
	B        float64 `json:"b"`
	Docs     int     `json:"docs"`
	Terms    int     `json:"terms"`
	Pairs    int     `json:"pairs"`
	TotalLen int64   `json:"total_len"`
}

// loadStatic validates a binfmt container as a BM25 snapshot and wraps it
// as a base segment. Validation is exhaustive — the container's CRCs
// guarantee the bytes match what the writer produced, and this pass
// guarantees the columns are structurally sound, so a corrupt or
// hand-crafted file fails loudly at open rather than corrupting a search.
func loadStatic(r *binfmt.Reader) (*staticSeg, error) {
	var meta staticMeta
	if err := r.JSON("meta", &meta); err != nil {
		return nil, err
	}
	if meta.Family != "bm25" {
		return nil, fmt.Errorf("invindex: snapshot family %q, want %q", meta.Family, "bm25")
	}
	if meta.Docs < 0 || meta.Terms < 0 || meta.Pairs < 0 {
		return nil, fmt.Errorf("invindex: snapshot has negative counts (docs=%d terms=%d pairs=%d)", meta.Docs, meta.Terms, meta.Pairs)
	}
	if math.IsNaN(meta.K1) || math.IsInf(meta.K1, 0) || math.IsNaN(meta.B) || math.IsInf(meta.B, 0) {
		return nil, fmt.Errorf("invindex: snapshot has non-finite BM25 parameters")
	}
	s := &staticSeg{r: r, k1: meta.K1, b: meta.B, n: meta.Docs}
	var err error
	if s.ids, err = r.Strings("ids"); err != nil {
		return nil, err
	}
	if s.lengths, err = r.Int32s("lengths"); err != nil {
		return nil, err
	}
	if s.idsort, err = r.Uint32s("idsort"); err != nil {
		return nil, err
	}
	if s.terms, err = r.Strings("terms"); err != nil {
		return nil, err
	}
	if s.postIdx, err = r.Uint32s("postidx"); err != nil {
		return nil, err
	}
	if s.posts, err = r.Int32s("postings"); err != nil {
		return nil, err
	}
	if s.ids.Len() != meta.Docs || len(s.lengths) != meta.Docs || len(s.idsort) != meta.Docs {
		return nil, fmt.Errorf("invindex: snapshot document columns disagree (ids=%d lengths=%d idsort=%d docs=%d)",
			s.ids.Len(), len(s.lengths), len(s.idsort), meta.Docs)
	}
	if s.terms.Len() != meta.Terms || len(s.postIdx) != meta.Terms+1 {
		return nil, fmt.Errorf("invindex: snapshot term columns disagree (terms=%d postidx=%d)", s.terms.Len(), len(s.postIdx))
	}
	if len(s.posts) != 2*meta.Pairs {
		return nil, fmt.Errorf("invindex: snapshot postings length %d, want %d pairs", len(s.posts), meta.Pairs)
	}
	if meta.Terms > 0 && meta.Terms+1 != len(s.postIdx) {
		return nil, fmt.Errorf("invindex: snapshot postidx length %d", len(s.postIdx))
	}
	// idsort must order ids strictly (which also proves it a permutation:
	// n in-range values with pairwise-distinct targets).
	for i, ord := range s.idsort {
		if int(ord) >= meta.Docs {
			return nil, fmt.Errorf("invindex: snapshot idsort[%d]=%d out of range", i, ord)
		}
		if i > 0 && bytes.Compare(s.ids.Bytes(int(s.idsort[i-1])), s.ids.Bytes(int(ord))) >= 0 {
			return nil, fmt.Errorf("invindex: snapshot idsort not strictly increasing at %d", i)
		}
	}
	// Terms must be sorted strictly for binary search.
	for i := 1; i < meta.Terms; i++ {
		if bytes.Compare(s.terms.Bytes(i-1), s.terms.Bytes(i)) >= 0 {
			return nil, fmt.Errorf("invindex: snapshot terms not strictly increasing at %d", i)
		}
	}
	if meta.Terms >= 0 {
		if len(s.postIdx) > 0 && s.postIdx[0] != 0 {
			return nil, fmt.Errorf("invindex: snapshot postidx does not start at 0")
		}
		for i := 1; i < len(s.postIdx); i++ {
			if s.postIdx[i] < s.postIdx[i-1] || int(s.postIdx[i]) > meta.Pairs {
				return nil, fmt.Errorf("invindex: snapshot postidx not monotonic at %d", i)
			}
		}
		if len(s.postIdx) > 0 && int(s.postIdx[len(s.postIdx)-1]) != meta.Pairs {
			return nil, fmt.Errorf("invindex: snapshot postidx ends at %d, want %d", s.postIdx[len(s.postIdx)-1], meta.Pairs)
		}
	}
	var totalLen int64
	for i, l := range s.lengths {
		if l < 0 {
			return nil, fmt.Errorf("invindex: snapshot document %d has negative length", i)
		}
		totalLen += int64(l)
	}
	if totalLen != meta.TotalLen {
		return nil, fmt.Errorf("invindex: snapshot total length %d, meta says %d", totalLen, meta.TotalLen)
	}
	s.totalLen = totalLen
	for i := 0; i+1 < len(s.posts); i += 2 {
		if d := s.posts[i]; d < 0 || int(d) >= meta.Docs {
			return nil, fmt.Errorf("invindex: snapshot posting pair %d references unknown doc %d", i/2, d)
		}
		if f := s.posts[i+1]; f <= 0 {
			return nil, fmt.Errorf("invindex: snapshot posting pair %d has non-positive frequency %d", i/2, f)
		}
	}
	return s, nil
}

// findDoc returns the base ordinal of id, or -1. Allocation-free.
func (s *staticSeg) findDoc(id string) int32 {
	lo, hi := 0, s.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if compareBytesString(s.ids.Bytes(int(s.idsort[mid])), id) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.n {
		ord := int32(s.idsort[lo])
		if compareBytesString(s.ids.Bytes(int(ord)), id) == 0 {
			return ord
		}
	}
	return -1
}

// findTerm returns the term index of t, or -1. Allocation-free: the
// comparison walks the term blob directly.
func (s *staticSeg) findTerm(t string) int {
	lo, hi := 0, s.terms.Len()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if compareBytesString(s.terms.Bytes(mid), t) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.terms.Len() && compareBytesString(s.terms.Bytes(lo), t) == 0 {
		return lo
	}
	return -1
}

// pairs returns term ti's interleaved (doc, freq) pairs.
func (s *staticSeg) pairs(ti int) []int32 {
	return s.posts[2*s.postIdx[ti] : 2*s.postIdx[ti+1]]
}

// compareBytesString is bytes.Compare(a, []byte(b)) without the
// conversion allocation.
func compareBytesString(a []byte, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
