package invindex

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func buildSmall(t *testing.T) *Index {
	t.Helper()
	ix := New()
	docs := map[string]string{
		"d1": "the quick brown fox jumps over the lazy dog",
		"d2": "golf tournament in springfield with record prize money",
		"d3": "the golf open championship prize",
		"d4": "congressional district election results",
		"d5": "fox hunting season opens in springfield",
	}
	for id, text := range docs {
		if err := ix.Add(id, text); err != nil {
			t.Fatalf("Add(%s): %v", id, err)
		}
	}
	return ix
}

func TestAddAndLen(t *testing.T) {
	ix := buildSmall(t)
	if ix.Len() != 5 {
		t.Errorf("Len = %d", ix.Len())
	}
	if ix.Terms() == 0 {
		t.Error("Terms = 0")
	}
	if !ix.Contains("d1") || ix.Contains("nope") {
		t.Error("Contains wrong")
	}
}

func TestAddDuplicate(t *testing.T) {
	ix := New()
	if err := ix.Add("d1", "text"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("d1", "other"); err == nil {
		t.Error("duplicate Add accepted")
	}
	// After deletion, the id can be reused.
	if !ix.Delete("d1") {
		t.Fatal("Delete failed")
	}
	if err := ix.Add("d1", "new text"); err != nil {
		t.Errorf("re-Add after delete: %v", err)
	}
}

func TestSearchRelevanceOrdering(t *testing.T) {
	ix := buildSmall(t)
	hits := ix.Search("golf prize", 10)
	if len(hits) < 2 {
		t.Fatalf("hits = %v", hits)
	}
	// d3 mentions both golf and prize in a short doc; it must beat docs
	// with only one of the terms.
	if hits[0].ID != "d3" {
		t.Errorf("top hit = %s, want d3 (hits %v)", hits[0].ID, hits)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Error("hits not sorted by score")
		}
	}
}

func TestSearchTopKBound(t *testing.T) {
	ix := buildSmall(t)
	if got := ix.Search("the golf fox springfield", 2); len(got) != 2 {
		t.Errorf("k=2 returned %d hits", len(got))
	}
	if got := ix.Search("anything", 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	if got := ix.Search("zzz unknown terms", 5); got != nil {
		t.Errorf("no-match query returned %v", got)
	}
	if got := ix.Search("", 5); got != nil {
		t.Errorf("empty query returned %v", got)
	}
}

func TestSearchEmptyIndex(t *testing.T) {
	ix := New()
	if got := ix.Search("anything", 5); got != nil {
		t.Errorf("empty index returned %v", got)
	}
}

func TestDelete(t *testing.T) {
	ix := buildSmall(t)
	if !ix.Delete("d3") {
		t.Fatal("Delete(d3) = false")
	}
	if ix.Delete("d3") {
		t.Error("double Delete = true")
	}
	if ix.Delete("ghost") {
		t.Error("Delete(ghost) = true")
	}
	if ix.Len() != 4 {
		t.Errorf("Len after delete = %d", ix.Len())
	}
	for _, h := range ix.Search("golf prize", 10) {
		if h.ID == "d3" {
			t.Error("deleted doc still retrieved")
		}
	}
}

func TestIDFPreference(t *testing.T) {
	// A term appearing in one doc must outweigh a term appearing in many.
	ix := New()
	for i := 0; i < 20; i++ {
		if err := ix.Add(fmt.Sprintf("common-%d", i), "common filler words everywhere"); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Add("rare", "common zebra"); err != nil {
		t.Fatal(err)
	}
	hits := ix.Search("zebra common", 3)
	if len(hits) == 0 || hits[0].ID != "rare" {
		t.Errorf("rare-term doc not first: %v", hits)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	ix := New()
	for _, id := range []string{"b", "a", "c"} {
		if err := ix.Add(id, "identical content here"); err != nil {
			t.Fatal(err)
		}
	}
	hits := ix.Search("identical content", 3)
	if len(hits) != 3 || hits[0].ID != "a" || hits[1].ID != "b" || hits[2].ID != "c" {
		t.Errorf("tie-break order = %v", hits)
	}
}

func TestExplain(t *testing.T) {
	ix := buildSmall(t)
	contrib, ok := ix.Explain("golf prize", "d3")
	if !ok {
		t.Fatal("Explain failed for known doc")
	}
	if len(contrib) != 2 {
		t.Errorf("Explain terms = %v", contrib)
	}
	var sum float64
	for _, c := range contrib {
		if c <= 0 {
			t.Errorf("non-positive contribution: %v", contrib)
		}
		sum += c
	}
	hits := ix.Search("golf prize", 10)
	for _, h := range hits {
		if h.ID == "d3" {
			if diff := sum - h.Score; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("Explain sum %v != search score %v", sum, h.Score)
			}
		}
	}
	if _, ok := ix.Explain("golf", "ghost"); ok {
		t.Error("Explain on unknown doc = ok")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	ix := buildSmall(t)
	ix.Delete("d5") // tombstones must compact away
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != 4 {
		t.Errorf("loaded Len = %d", loaded.Len())
	}
	if loaded.Contains("d5") {
		t.Error("tombstoned doc survived snapshot")
	}
	orig := ix.Search("golf prize", 5)
	got := loaded.Search("golf prize", 5)
	if len(orig) != len(got) {
		t.Fatalf("hit counts differ: %d vs %d", len(orig), len(got))
	}
	for i := range orig {
		if orig[i].ID != got[i].ID {
			t.Errorf("hit %d: %s vs %s", i, orig[i].ID, got[i].ID)
		}
		if diff := orig[i].Score - got[i].Score; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("hit %d score drift: %v vs %v", i, orig[i].Score, got[i].Score)
		}
	}
}

func TestSaveLoadProperty(t *testing.T) {
	// Any set of docs roundtrips with identical search results.
	f := func(texts []string) bool {
		ix := New()
		for i, txt := range texts {
			if err := ix.Add(fmt.Sprintf("doc-%d", i), txt); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			return false
		}
		loaded, err := Load(&buf)
		if err != nil {
			return false
		}
		if loaded.Len() != ix.Len() {
			return false
		}
		q := "doc content words"
		if len(texts) > 0 {
			q = texts[0]
		}
		a, b := ix.Search(q, 5), loaded.Search(q, 5)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentSearchDuringAdd(t *testing.T) {
	ix := New()
	for i := 0; i < 100; i++ {
		if err := ix.Add(fmt.Sprintf("seed-%d", i), "golf prize money tournament open"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = ix.Search("golf money", 5)
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = ix.Add(fmt.Sprintf("w%d-%d", w, i), "more golf content from writers")
			}
		}(w)
	}
	wg.Wait()
	if ix.Len() != 100+4*200 {
		t.Errorf("Len after concurrent adds = %d", ix.Len())
	}
}

func TestCustomAnalyzer(t *testing.T) {
	// A whitespace-only analyzer must keep stopwords searchable.
	ix := New(WithAnalyzer(strings.Fields))
	if err := ix.Add("d1", "the the the"); err != nil {
		t.Fatal(err)
	}
	if hits := ix.Search("the", 1); len(hits) != 1 {
		t.Errorf("custom analyzer: %v", hits)
	}
}

func TestBM25ParamOverride(t *testing.T) {
	// With b=0 there is no length normalization: a long doc repeating the
	// term more often must win.
	ix := New(WithBM25(1.2, 0))
	if err := ix.Add("long", strings.Repeat("golf ", 50)+strings.Repeat("filler ", 500)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("short", "golf"); err != nil {
		t.Fatal(err)
	}
	hits := ix.Search("golf", 2)
	if len(hits) != 2 || hits[0].ID != "long" {
		t.Errorf("b=0 ranking = %v", hits)
	}
}

func TestAddTermsMatchesAdd(t *testing.T) {
	// Indexing pre-analyzed terms (the pipelined ingest path) must rank
	// identically to indexing raw text, and enforce the same dup rule.
	raw := New()
	pre := New()
	docs := map[string]string{
		"d1": "tommy bolt recorded a money of 570 at the 1954 open",
		"d2": "ben hogan finished with a total of 287 in 1959",
		"d3": "the committee reviewed attendance and prize money records",
	}
	for id, text := range docs {
		if err := raw.Add(id, text); err != nil {
			t.Fatal(err)
		}
		if err := pre.AddTerms(id, pre.Analyze(text)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pre.AddTerms("d1", pre.Analyze("dup")); err == nil {
		t.Fatal("AddTerms accepted a duplicate id")
	}
	for _, q := range []string{"tommy bolt money", "prize money records", "ben hogan 287"} {
		a, b := raw.Search(q, 10), pre.Search(q, 10)
		if len(a) != len(b) {
			t.Fatalf("query %q: %d vs %d hits", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %q hit %d: %+v vs %+v", q, i, a[i], b[i])
			}
		}
	}
}
