// Package invindex implements the content-based index of VerifAI's Indexer
// module: an in-memory inverted index with Okapi BM25 ranking. It stands in
// for Elasticsearch in the paper's architecture — lake instances (tuples,
// tables, text files) are serialized to strings and indexed; queries are
// serialized generated data objects.
//
// The index is safe for concurrent use: writes take an exclusive lock,
// searches take a shared lock.
package invindex

import (
	"fmt"
	"sync"

	"repro/internal/textutil"
)

// Analyzer converts a string into index terms. The default analyzer chain is
// tokenize → stopword-filter → Porter stem (textutil.TokenizeFiltered).
type Analyzer func(string) []string

// posting records one document's occurrences of a term.
type posting struct {
	doc  int32 // internal document ordinal
	freq int32 // term frequency in the document
}

// Index is a BM25 inverted index over string documents. It has up to two
// tiers: an optional immutable base segment (a binfmt snapshot, typically
// mmap'd — see OpenFile) occupying global ordinals [0, base.n), and the
// mutable delta below whose local ordinals follow at base.n. New documents
// always land in the delta; deletions of base documents only flip a bit in
// baseDeleted, so the base columns are never written.
type Index struct {
	mu sync.RWMutex

	analyze Analyzer
	k1, b   float64

	base         *staticSeg
	baseDeleted  []bool // tombstones for base ordinals
	baseLive     int
	baseTotalLen int64 // sum of lengths of live base documents

	ids      []string       // delta ordinal -> external ID
	byID     map[string]int // external ID -> delta ordinal
	lengths  []int32        // delta ordinal -> token count
	deleted  []bool         // delta tombstones
	postings map[string][]posting
	// totalLen is the sum of lengths of live delta documents, for avgdl.
	totalLen int64
	liveDocs int
}

// Option configures an Index.
type Option func(*Index)

// WithAnalyzer overrides the analysis chain.
func WithAnalyzer(a Analyzer) Option { return func(ix *Index) { ix.analyze = a } }

// WithBM25 overrides the BM25 parameters (defaults k1=1.2, b=0.75, the
// Elasticsearch/Lucene defaults).
func WithBM25(k1, b float64) Option {
	return func(ix *Index) { ix.k1, ix.b = k1, b }
}

// New returns an empty index.
func New(opts ...Option) *Index {
	ix := &Index{
		analyze:  textutil.TokenizeFiltered,
		k1:       1.2,
		b:        0.75,
		byID:     make(map[string]int),
		postings: make(map[string][]posting),
	}
	for _, o := range opts {
		o(ix)
	}
	return ix
}

// Add indexes text under id. Re-adding an existing id returns an error:
// documents are immutable, and the caller should Delete first (matching the
// append-mostly ingest pattern of a data lake).
func (ix *Index) Add(id, text string) error {
	return ix.AddTerms(id, ix.analyze(text))
}

// AddTerms indexes a pre-analyzed document under id. The caller ran the
// analysis chain (Analyze) already — typically on an ingest pipeline's
// prepare stage, outside the index lock — so the critical section covers
// only the posting-list insertion.
func (ix *Index) AddTerms(id string, terms []string) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ord, ok := ix.byID[id]; ok && !ix.deleted[ord] {
		return fmt.Errorf("invindex: duplicate document id %q", id)
	}
	if ix.base != nil {
		if bo := ix.base.findDoc(id); bo >= 0 && !ix.baseDeleted[bo] {
			return fmt.Errorf("invindex: duplicate document id %q", id)
		}
	}
	ord := len(ix.ids)
	ix.ids = append(ix.ids, id)
	ix.byID[id] = ord
	ix.lengths = append(ix.lengths, int32(len(terms)))
	ix.deleted = append(ix.deleted, false)
	ix.totalLen += int64(len(terms))
	ix.liveDocs++

	freqs := make(map[string]int32, len(terms))
	for _, t := range terms {
		freqs[t]++
	}
	for t, f := range freqs {
		ix.postings[t] = append(ix.postings[t], posting{doc: int32(ord), freq: f})
	}
	return nil
}

// compactThreshold is the minimum tombstone count before Delete compacts
// the index. Deletion compacts once tombstones both exceed this floor and
// outnumber live documents, so sustained churn (e.g. entity re-indexing
// under live KG ingestion) keeps postings memory and scan cost within 2× of
// the live set at amortized O(1) per deletion.
const compactThreshold = 64

// Delete tombstones a document, compacting the index once tombstones
// dominate. Deleting an unknown or already-deleted id is a no-op returning
// false. Base-segment documents are tombstoned in a side bitmap and never
// compacted: the base columns are immutable (often a read-only mapping),
// and dead base entries cost one skipped pair per query.
func (ix *Index) Delete(id string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ord, ok := ix.byID[id]
	if !ok || ix.deleted[ord] {
		if ix.base != nil {
			if bo := ix.base.findDoc(id); bo >= 0 && !ix.baseDeleted[bo] {
				ix.baseDeleted[bo] = true
				ix.baseLive--
				ix.baseTotalLen -= int64(ix.base.lengths[bo])
				return true
			}
		}
		return false
	}
	ix.deleted[ord] = true
	ix.totalLen -= int64(ix.lengths[ord])
	ix.liveDocs--
	if dead := len(ix.ids) - ix.liveDocs; dead > ix.liveDocs && dead >= compactThreshold {
		ix.compactLocked()
	}
	return true
}

// compactLocked rebuilds the document arrays and posting lists without
// tombstones, remapping ordinals. Caller holds the write lock.
func (ix *Index) compactLocked() {
	remap := make([]int32, len(ix.ids))
	ids := make([]string, 0, ix.liveDocs)
	lengths := make([]int32, 0, ix.liveDocs)
	byID := make(map[string]int, ix.liveDocs)
	for i, id := range ix.ids {
		if ix.deleted[i] {
			remap[i] = -1
			continue
		}
		remap[i] = int32(len(ids))
		byID[id] = len(ids)
		ids = append(ids, id)
		lengths = append(lengths, ix.lengths[i])
	}
	ix.ids, ix.lengths, ix.byID = ids, lengths, byID
	ix.deleted = make([]bool, len(ids))
	for term, plist := range ix.postings {
		kept := plist[:0]
		for _, p := range plist {
			if no := remap[p.doc]; no >= 0 {
				kept = append(kept, posting{doc: no, freq: p.freq})
			}
		}
		if len(kept) == 0 {
			delete(ix.postings, term)
		} else {
			ix.postings[term] = kept
		}
	}
}

// Len returns the number of live documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.liveDocs + ix.baseLive
}

// Contains reports whether id is indexed and live.
func (ix *Index) Contains(id string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ord, ok := ix.byID[id]; ok && !ix.deleted[ord] {
		return true
	}
	if ix.base != nil {
		if bo := ix.base.findDoc(id); bo >= 0 && !ix.baseDeleted[bo] {
			return true
		}
	}
	return false
}

// Terms returns the number of distinct terms in the index.
func (ix *Index) Terms() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.base == nil {
		return len(ix.postings)
	}
	n := ix.base.terms.Len()
	for t := range ix.postings {
		if ix.base.findTerm(t) < 0 {
			n++
		}
	}
	return n
}
