package invindex

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the serialized form of an index. Tombstoned documents are
// compacted away at save time, so a load never carries dead postings.
type snapshot struct {
	K1, B    float64
	IDs      []string
	Lengths  []int32
	Postings map[string][]postingSnap
}

type postingSnap struct {
	Doc  int32
	Freq int32
}

// Frozen is an immutable, compacted capture of an index's contents,
// decoupled from the live structure: Freeze builds it quickly under the
// read lock (pure memory copies), Save serializes it later with no index
// locks held — the split that lets a checkpoint's long write phase run
// while ingestion keeps mutating the live index.
type Frozen struct {
	snap snapshot
}

// Freeze captures the index's current live contents. Tombstoned documents
// are compacted away, so a frozen capture never carries dead postings.
// The analyzer is not captured (functions cannot serialize); the loader
// supplies it.
func (ix *Index) Freeze() *Frozen {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	// Build ordinal remapping that skips tombstones.
	remap := make([]int32, len(ix.ids))
	var snap snapshot
	snap.K1, snap.B = ix.k1, ix.b
	for ord, id := range ix.ids {
		if ix.deleted[ord] {
			remap[ord] = -1
			continue
		}
		remap[ord] = int32(len(snap.IDs))
		snap.IDs = append(snap.IDs, id)
		snap.Lengths = append(snap.Lengths, ix.lengths[ord])
	}
	snap.Postings = make(map[string][]postingSnap, len(ix.postings))
	for t, plist := range ix.postings {
		var out []postingSnap
		for _, p := range plist {
			if remap[p.doc] < 0 {
				continue
			}
			out = append(out, postingSnap{Doc: remap[p.doc], Freq: p.freq})
		}
		if len(out) > 0 {
			snap.Postings[t] = out
		}
	}
	return &Frozen{snap: snap}
}

// Save serializes the frozen capture to w using encoding/gob.
func (z *Frozen) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(&z.snap); err != nil {
		return fmt.Errorf("invindex: encode snapshot: %w", err)
	}
	return nil
}

// Save writes a compacted snapshot of the index to w using encoding/gob:
// Freeze then Frozen.Save in one call, for callers that do not need the
// two-phase split. The analyzer is not serialized; the loader supplies it,
// and the caller is responsible for supplying the same chain that built
// the index.
func (ix *Index) Save(w io.Writer) error {
	return ix.Freeze().Save(w)
}

// Load reads a snapshot produced by Save. Options (typically WithAnalyzer)
// apply after the snapshot's BM25 parameters are restored.
func Load(r io.Reader, opts ...Option) (*Index, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("invindex: decode snapshot: %w", err)
	}
	ix := New()
	ix.k1, ix.b = snap.K1, snap.B
	for _, o := range opts {
		o(ix)
	}
	ix.ids = snap.IDs
	ix.lengths = snap.Lengths
	ix.deleted = make([]bool, len(snap.IDs))
	ix.byID = make(map[string]int, len(snap.IDs))
	for ord, id := range snap.IDs {
		if _, dup := ix.byID[id]; dup {
			return nil, fmt.Errorf("invindex: snapshot has duplicate id %q", id)
		}
		ix.byID[id] = ord
		ix.totalLen += int64(snap.Lengths[ord])
	}
	ix.liveDocs = len(snap.IDs)
	ix.postings = make(map[string][]posting, len(snap.Postings))
	for t, plist := range snap.Postings {
		out := make([]posting, len(plist))
		for i, p := range plist {
			if p.Doc < 0 || int(p.Doc) >= len(snap.IDs) {
				return nil, fmt.Errorf("invindex: snapshot posting for %q references unknown doc %d", t, p.Doc)
			}
			out[i] = posting{doc: p.Doc, freq: p.Freq}
		}
		ix.postings[t] = out
	}
	return ix, nil
}
