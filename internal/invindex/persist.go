package invindex

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/binfmt"
)

// Snapshots are written in the binfmt columnar container (see Save and
// the column list on staticSeg), which a loader can memory-map and serve
// directly as an immutable base segment — recovery costs one verification
// pass instead of a full decode. Snapshots from earlier releases used
// encoding/gob; Load and OpenFile sniff the format magic and still accept
// them, decoding eagerly into the mutable tier.

// snapshot is the in-memory form of a compacted capture (and the gob wire
// format of legacy snapshots).
type snapshot struct {
	K1, B    float64
	IDs      []string
	Lengths  []int32
	Postings map[string][]postingSnap
}

type postingSnap struct {
	Doc  int32
	Freq int32
}

// Frozen is an immutable, compacted capture of an index's contents,
// decoupled from the live structure: Freeze builds it quickly under the
// read lock (pure memory copies), Save serializes it later with no index
// locks held — the split that lets a checkpoint's long write phase run
// while ingestion keeps mutating the live index.
type Frozen struct {
	snap snapshot
}

// Freeze captures the index's current live contents across both tiers
// (base documents first, then delta). Tombstoned documents are compacted
// away, so a frozen capture never carries dead postings. The analyzer is
// not captured (functions cannot serialize); the loader supplies it.
func (ix *Index) Freeze() *Frozen {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	var snap snapshot
	snap.K1, snap.B = ix.k1, ix.b
	snap.Postings = make(map[string][]postingSnap, len(ix.postings))

	// Base tier: remap live base ordinals into the compacted document
	// space, then walk the sorted term dictionary.
	var baseRemap []int32
	if ix.base != nil {
		baseRemap = make([]int32, ix.base.n)
		for ord := 0; ord < ix.base.n; ord++ {
			if ix.baseDeleted[ord] {
				baseRemap[ord] = -1
				continue
			}
			baseRemap[ord] = int32(len(snap.IDs))
			snap.IDs = append(snap.IDs, ix.base.ids.At(ord))
			snap.Lengths = append(snap.Lengths, ix.base.lengths[ord])
		}
		for ti := 0; ti < ix.base.terms.Len(); ti++ {
			pairs := ix.base.pairs(ti)
			var out []postingSnap
			for i := 0; i+1 < len(pairs); i += 2 {
				if no := baseRemap[pairs[i]]; no >= 0 {
					out = append(out, postingSnap{Doc: no, Freq: pairs[i+1]})
				}
			}
			if len(out) > 0 {
				snap.Postings[ix.base.terms.At(ti)] = out
			}
		}
	}

	// Delta tier.
	remap := make([]int32, len(ix.ids))
	for ord, id := range ix.ids {
		if ix.deleted[ord] {
			remap[ord] = -1
			continue
		}
		remap[ord] = int32(len(snap.IDs))
		snap.IDs = append(snap.IDs, id)
		snap.Lengths = append(snap.Lengths, ix.lengths[ord])
	}
	for t, plist := range ix.postings {
		out := snap.Postings[t]
		for _, p := range plist {
			if remap[p.doc] < 0 {
				continue
			}
			out = append(out, postingSnap{Doc: remap[p.doc], Freq: p.freq})
		}
		if len(out) > 0 {
			snap.Postings[t] = out
		}
	}
	return &Frozen{snap: snap}
}

// Save serializes the frozen capture to w in the binfmt columnar layout.
func (z *Frozen) Save(w io.Writer) error {
	s := &z.snap
	bw := binfmt.NewWriter()
	terms := make([]string, 0, len(s.Postings))
	for t := range s.Postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	pairs := 0
	for _, t := range terms {
		pairs += len(s.Postings[t])
	}
	var totalLen int64
	for _, l := range s.Lengths {
		totalLen += int64(l)
	}
	if err := bw.JSON("meta", staticMeta{
		Family: "bm25", K1: s.K1, B: s.B,
		Docs: len(s.IDs), Terms: len(terms), Pairs: pairs, TotalLen: totalLen,
	}); err != nil {
		return fmt.Errorf("invindex: encode snapshot: %w", err)
	}
	bw.Strings("ids", s.IDs)
	bw.Int32s("lengths", s.Lengths)
	idsort := make([]uint32, len(s.IDs))
	for i := range idsort {
		idsort[i] = uint32(i)
	}
	sort.Slice(idsort, func(a, b int) bool { return s.IDs[idsort[a]] < s.IDs[idsort[b]] })
	bw.Uint32s("idsort", idsort)
	bw.Strings("terms", terms)
	postIdx := make([]uint32, len(terms)+1)
	posts := make([]int32, 0, 2*pairs)
	for i, t := range terms {
		postIdx[i] = uint32(len(posts) / 2)
		for _, p := range s.Postings[t] {
			posts = append(posts, p.Doc, p.Freq)
		}
	}
	postIdx[len(terms)] = uint32(len(posts) / 2)
	bw.Uint32s("postidx", postIdx)
	bw.Int32s("postings", posts)
	if _, err := bw.WriteTo(w); err != nil {
		return fmt.Errorf("invindex: write snapshot: %w", err)
	}
	return nil
}

// SaveGob serializes the frozen capture to w in the legacy encoding/gob
// format, kept for read-compatibility tests and startup-time comparisons.
func (z *Frozen) SaveGob(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(&z.snap); err != nil {
		return fmt.Errorf("invindex: encode snapshot: %w", err)
	}
	return nil
}

// Save writes a compacted snapshot of the index to w (Freeze then
// Frozen.Save in one call), for callers that do not need the two-phase
// split. The analyzer is not serialized; the loader supplies it, and the
// caller is responsible for supplying the same chain that built the index.
func (ix *Index) Save(w io.Writer) error {
	return ix.Freeze().Save(w)
}

// Load reads a snapshot produced by Save (binfmt, detected by its format
// magic) or by a pre-binfmt release (gob). Options (typically
// WithAnalyzer) apply after the snapshot's BM25 parameters are restored.
// Binary snapshots read through Load are fully buffered in memory; use
// OpenFile to serve one from a mapped file instead.
func Load(r io.Reader, opts ...Option) (*Index, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binfmt.Magic))
	if err == nil && string(head) == binfmt.Magic {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("invindex: read snapshot: %w", err)
		}
		fr, err := binfmt.NewReader(data)
		if err != nil {
			return nil, fmt.Errorf("invindex: %w", err)
		}
		return fromReader(fr, opts...)
	}
	return loadGob(br, opts...)
}

// OpenFile opens a snapshot file, serving binfmt snapshots as an mmap'd
// immutable base segment (new writes layer into the mutable delta) and
// decoding legacy gob snapshots eagerly.
func OpenFile(path string, opts ...Option) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var head [len(binfmt.Magic)]byte
	_, rerr := io.ReadFull(f, head[:])
	if rerr == nil && string(head[:]) == binfmt.Magic {
		f.Close()
		fr, err := binfmt.OpenFile(path)
		if err != nil {
			return nil, fmt.Errorf("invindex: %w", err)
		}
		return fromReader(fr, opts...)
	}
	defer f.Close()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("invindex: %w", err)
	}
	return loadGob(bufio.NewReader(f), opts...)
}

// fromReader wraps a verified binfmt container as an Index with an
// immutable base tier and an empty delta.
func fromReader(fr *binfmt.Reader, opts ...Option) (*Index, error) {
	base, err := loadStatic(fr)
	if err != nil {
		return nil, err
	}
	ix := New()
	ix.k1, ix.b = base.k1, base.b
	for _, o := range opts {
		o(ix)
	}
	ix.base = base
	ix.baseDeleted = make([]bool, base.n)
	ix.baseLive = base.n
	ix.baseTotalLen = base.totalLen
	return ix, nil
}

// loadGob decodes a legacy gob snapshot into the mutable tier.
func loadGob(r io.Reader, opts ...Option) (*Index, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("invindex: decode snapshot: %w", err)
	}
	ix := New()
	ix.k1, ix.b = snap.K1, snap.B
	for _, o := range opts {
		o(ix)
	}
	ix.ids = snap.IDs
	ix.lengths = snap.Lengths
	ix.deleted = make([]bool, len(snap.IDs))
	ix.byID = make(map[string]int, len(snap.IDs))
	for ord, id := range snap.IDs {
		if _, dup := ix.byID[id]; dup {
			return nil, fmt.Errorf("invindex: snapshot has duplicate id %q", id)
		}
		ix.byID[id] = ord
		ix.totalLen += int64(snap.Lengths[ord])
	}
	ix.liveDocs = len(snap.IDs)
	ix.postings = make(map[string][]posting, len(snap.Postings))
	for t, plist := range snap.Postings {
		out := make([]posting, len(plist))
		for i, p := range plist {
			if p.Doc < 0 || int(p.Doc) >= len(snap.IDs) {
				return nil, fmt.Errorf("invindex: snapshot posting for %q references unknown doc %d", t, p.Doc)
			}
			out[i] = posting{doc: p.Doc, freq: p.Freq}
		}
		ix.postings[t] = out
	}
	return ix, nil
}

// loadBinary parses data as a binfmt snapshot held in memory (used by
// fuzzing; production paths go through Load or OpenFile).
func loadBinary(data []byte, opts ...Option) (*Index, error) {
	fr, err := binfmt.NewReader(data)
	if err != nil {
		return nil, err
	}
	return fromReader(fr, opts...)
}
