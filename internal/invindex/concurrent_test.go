package invindex

import (
	"fmt"
	"sync"
	"testing"
)

// TestChurnCompaction drives delete/re-add far past the compaction
// threshold: live documents must stay searchable with correct scores
// throughout.
func TestChurnCompaction(t *testing.T) {
	ix := New()
	for i := 0; i < 30; i++ {
		if err := ix.Add(fmt.Sprintf("seed%d", i), fmt.Sprintf("seed document %d about golf and topic%d", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < 300; cycle++ {
		if !ix.Delete("seed7") {
			t.Fatalf("cycle %d: Delete(seed7) = false", cycle)
		}
		if err := ix.Add("seed7", "seed document 7 about golf and topic7"); err != nil {
			t.Fatalf("cycle %d: re-add: %v", cycle, err)
		}
	}
	if got := ix.Len(); got != 30 {
		t.Fatalf("Len = %d after churn, want 30", got)
	}
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("seed%d", i)
		hits := ix.Search(fmt.Sprintf("topic%d", i), 3)
		if len(hits) == 0 || hits[0].ID != id {
			t.Fatalf("%s not top hit for its unique term after churn: %v", id, hits)
		}
	}
}

// TestConcurrentAddSearchDelete hammers the BM25 index with concurrent
// writers, a deleter, and searchers; run under -race it proves the locking
// discipline, and the final state must account for every live document.
func TestConcurrentAddSearchDelete(t *testing.T) {
	const (
		writers   = 4
		perWriter = 100
	)
	ix := New()
	for i := 0; i < 10; i++ {
		if err := ix.Add(fmt.Sprintf("seed%d", i), fmt.Sprintf("seed document number %d about golf", i)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					ix.Search("document about golf", 5)
					ix.Explain("golf", "seed1")
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			ix.Delete(fmt.Sprintf("seed%d", i))
		}
	}()
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				text := fmt.Sprintf("writer %d wrote document %d mentioning tennis and golf", w, i)
				if err := ix.Add(id, text); err != nil {
					t.Errorf("add %s: %v", id, err)
				}
			}
		}(w)
	}
	writerWg.Wait()
	close(stop)
	wg.Wait()

	if got := ix.Len(); got != writers*perWriter {
		t.Fatalf("Len = %d, want %d live documents", got, writers*perWriter)
	}
	hits := ix.Search("writer wrote tennis", 3)
	if len(hits) == 0 {
		t.Fatal("no hits over concurrently built index")
	}
	if !ix.Contains("w3-42") {
		t.Fatal("concurrently added document missing")
	}
}
