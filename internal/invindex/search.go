package invindex

import (
	"container/heap"
	"math"
	"sort"
)

// Hit is one search result.
type Hit struct {
	// ID is the external document ID.
	ID string
	// Score is the BM25 score (higher is better).
	Score float64
}

// Search returns the top-k documents for query by BM25 score, ties broken by
// ascending ID for determinism. k <= 0 returns nil.
func (ix *Index) Search(query string, k int) []Hit {
	return ix.SearchTerms(ix.analyze(query), k)
}

// Analyze runs the index's analysis chain over text, for callers that fan
// one query out across many shards and want to tokenize it only once (pair
// with SearchTerms).
func (ix *Index) Analyze(text string) []string { return ix.analyze(text) }

// SearchTerms is Search over pre-analyzed query terms.
func (ix *Index) SearchTerms(terms []string, k int) []Hit {
	if k <= 0 {
		return nil
	}
	if len(terms) == 0 {
		return nil
	}

	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.liveDocs == 0 {
		return nil
	}
	avgdl := float64(ix.totalLen) / float64(ix.liveDocs)
	n := float64(ix.liveDocs)

	// Collapse duplicate query terms; BM25 treats repeated query terms as
	// multiplied weight. Terms are then scored in sorted order: per-doc
	// score accumulation is floating-point addition, which is not
	// associative, so map-order iteration would make the same query score
	// the same document differently across calls (a last-ULP flicker that
	// can reorder near-tied rankings).
	qf := make(map[string]float64, len(terms))
	for _, t := range terms {
		qf[t]++
	}
	uniq := make([]string, 0, len(qf))
	for t := range qf {
		uniq = append(uniq, t)
	}
	sort.Strings(uniq)

	scores := make(map[int32]float64)
	for _, t := range uniq {
		qw := qf[t]
		plist, ok := ix.postings[t]
		if !ok {
			continue
		}
		// Live document frequency for IDF. Tombstoned postings still appear
		// in the list but are skipped below; df uses live count.
		df := 0
		for _, p := range plist {
			if !ix.deleted[p.doc] {
				df++
			}
		}
		if df == 0 {
			continue
		}
		idf := math.Log(1 + (n-float64(df)+0.5)/(float64(df)+0.5))
		for _, p := range plist {
			if ix.deleted[p.doc] {
				continue
			}
			tf := float64(p.freq)
			dl := float64(ix.lengths[p.doc])
			norm := tf * (ix.k1 + 1) / (tf + ix.k1*(1-ix.b+ix.b*dl/avgdl))
			scores[p.doc] += qw * idf * norm
		}
	}
	if len(scores) == 0 {
		return nil
	}
	return ix.topK(scores, k)
}

// scoredDoc pairs a document ordinal with its score inside the top-k heap.
type scoredDoc struct {
	doc   int32
	score float64
}

// minHeap keeps the k best hits; the worst of the kept hits is at the root.
type minHeap struct {
	items []scoredDoc
	ids   []string
}

func (h *minHeap) Len() int { return len(h.items) }
func (h *minHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.score != b.score {
		return a.score < b.score
	}
	// Inverted tie-break: with equal scores the lexicographically larger ID
	// is "worse" so it gets evicted first, keeping smaller IDs.
	return h.ids[a.doc] > h.ids[b.doc]
}
func (h *minHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *minHeap) Push(x interface{}) { h.items = append(h.items, x.(scoredDoc)) }
func (h *minHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// topK selects the k best scored documents deterministically.
// Caller must hold at least a read lock.
func (ix *Index) topK(scores map[int32]float64, k int) []Hit {
	h := &minHeap{ids: ix.ids, items: make([]scoredDoc, 0, k+1)}
	for d, s := range scores {
		heap.Push(h, scoredDoc{doc: d, score: s})
		if h.Len() > k {
			heap.Pop(h)
		}
	}
	out := make([]Hit, h.Len())
	for i := range out {
		out[i] = Hit{ID: ix.ids[h.items[i].doc], Score: h.items[i].score}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Explain returns the per-term BM25 contributions for a (query, document)
// pair, supporting the provenance requirement (challenge C4): why a piece of
// evidence was retrieved. The map is term -> contribution; missing terms
// contribute zero. ok is false when the document is unknown or deleted.
func (ix *Index) Explain(query, id string) (map[string]float64, bool) {
	terms := ix.analyze(query)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ord, okID := ix.byID[id]
	if !okID || ix.deleted[ord] || ix.liveDocs == 0 {
		return nil, false
	}
	avgdl := float64(ix.totalLen) / float64(ix.liveDocs)
	n := float64(ix.liveDocs)
	qf := make(map[string]float64, len(terms))
	for _, t := range terms {
		qf[t]++
	}
	out := make(map[string]float64)
	for t, qw := range qf {
		plist := ix.postings[t]
		df := 0
		var tf float64
		for _, p := range plist {
			if ix.deleted[p.doc] {
				continue
			}
			df++
			if p.doc == int32(ord) {
				tf = float64(p.freq)
			}
		}
		if df == 0 || tf == 0 {
			continue
		}
		idf := math.Log(1 + (n-float64(df)+0.5)/(float64(df)+0.5))
		dl := float64(ix.lengths[ord])
		norm := tf * (ix.k1 + 1) / (tf + ix.k1*(1-ix.b+ix.b*dl/avgdl))
		out[t] = qw * idf * norm
	}
	return out, true
}
