package invindex

import (
	"math"
	"slices"
	"sync"
	"unsafe"
)

// Hit is one search result.
type Hit struct {
	// ID is the external document ID.
	ID string
	// Score is the BM25 score (higher is better).
	Score float64
}

// Search returns the top-k documents for query by BM25 score, ties broken by
// ascending ID for determinism. k <= 0 returns nil.
func (ix *Index) Search(query string, k int) []Hit {
	return ix.SearchTerms(ix.analyze(query), k)
}

// Analyze runs the index's analysis chain over text, for callers that fan
// one query out across many shards and want to tokenize it only once (pair
// with SearchTerms).
func (ix *Index) Analyze(text string) []string { return ix.analyze(text) }

// searchScratch holds every buffer SearchTerms needs, pooled so the steady
// path performs no per-query allocations: query terms and weights, a dense
// per-ordinal score accumulator reset via the touched list, and the top-k
// heap. scores entries are zero except between scoring and reset.
type searchScratch struct {
	terms   []string
	qw      []float64
	scores  []float64
	touched []int32
	heap    []scoredDoc
}

var scratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// scoredDoc pairs a global document ordinal with its score inside the
// top-k heap.
type scoredDoc struct {
	doc   int32
	score float64
}

// SearchTerms is Search over pre-analyzed query terms.
//
// The steady path is allocation-free apart from the returned slice (and,
// for hits resolved from an mmap'd base segment, materializing their ID
// strings): scoring uses pooled scratch buffers, the heap is sifted
// manually, and ID tie-breaks compare bytes in place.
func (ix *Index) SearchTerms(terms []string, k int) []Hit {
	if k <= 0 || len(terms) == 0 {
		return nil
	}

	ix.mu.RLock()
	defer ix.mu.RUnlock()
	nLive := ix.liveDocs + ix.baseLive
	if nLive == 0 {
		return nil
	}
	baseN := 0
	if ix.base != nil {
		baseN = ix.base.n
	}
	nOrds := baseN + len(ix.ids)
	avgdl := float64(ix.totalLen+ix.baseTotalLen) / float64(nLive)
	n := float64(nLive)

	sc := scratchPool.Get().(*searchScratch)

	// Collapse duplicate query terms; BM25 treats repeated query terms as
	// multiplied weight. Terms are then scored in sorted order: per-doc
	// score accumulation is floating-point addition, which is not
	// associative, so unordered iteration would make the same query score
	// the same document differently across calls (a last-ULP flicker that
	// can reorder near-tied rankings).
	sc.terms = append(sc.terms[:0], terms...)
	slices.Sort(sc.terms)
	sc.qw = sc.qw[:0]
	w := 0
	for i := 0; i < len(sc.terms); {
		j := i + 1
		for j < len(sc.terms) && sc.terms[j] == sc.terms[i] {
			j++
		}
		sc.terms[w] = sc.terms[i]
		sc.qw = append(sc.qw, float64(j-i))
		w++
		i = j
	}
	sc.terms = sc.terms[:w]

	// Dense score accumulator indexed by global ordinal; entries are
	// always zero outside the scoring window, and every live BM25
	// contribution is positive, so zero doubles as "untouched".
	if len(sc.scores) < nOrds {
		sc.scores = make([]float64, nOrds)
	}
	scores, touched := sc.scores, sc.touched[:0]

	for ti, t := range sc.terms {
		qw := sc.qw[ti]
		var basePairs []int32
		if ix.base != nil {
			if bt := ix.base.findTerm(t); bt >= 0 {
				basePairs = ix.base.pairs(bt)
			}
		}
		plist := ix.postings[t]
		if len(basePairs) == 0 && len(plist) == 0 {
			continue
		}
		// Live document frequency for IDF. Tombstoned postings still
		// appear in the lists but are skipped below; df uses live count.
		df := 0
		for i := 0; i+1 < len(basePairs); i += 2 {
			if !ix.baseDeleted[basePairs[i]] {
				df++
			}
		}
		for _, p := range plist {
			if !ix.deleted[p.doc] {
				df++
			}
		}
		if df == 0 {
			continue
		}
		idf := math.Log(1 + (n-float64(df)+0.5)/(float64(df)+0.5))
		for i := 0; i+1 < len(basePairs); i += 2 {
			doc := basePairs[i]
			if ix.baseDeleted[doc] {
				continue
			}
			tf := float64(basePairs[i+1])
			dl := float64(ix.base.lengths[doc])
			norm := tf * (ix.k1 + 1) / (tf + ix.k1*(1-ix.b+ix.b*dl/avgdl))
			if scores[doc] == 0 {
				touched = append(touched, doc)
			}
			scores[doc] += qw * idf * norm
		}
		for _, p := range plist {
			if ix.deleted[p.doc] {
				continue
			}
			ord := int32(baseN) + p.doc
			tf := float64(p.freq)
			dl := float64(ix.lengths[p.doc])
			norm := tf * (ix.k1 + 1) / (tf + ix.k1*(1-ix.b+ix.b*dl/avgdl))
			if scores[ord] == 0 {
				touched = append(touched, ord)
			}
			scores[ord] += qw * idf * norm
		}
	}

	var out []Hit
	if len(touched) > 0 {
		out = ix.topK(scores, touched, k, sc)
	}

	// Reset the accumulator via the touched list and recycle the scratch.
	for _, ord := range touched {
		scores[ord] = 0
	}
	sc.touched = touched[:0]
	scratchPool.Put(sc)
	return out
}

// ordIDBytes returns the external ID of a global ordinal as a zero-copy
// byte view, for tie-break comparisons without materializing strings.
func (ix *Index) ordIDBytes(ord int32) []byte {
	if ix.base != nil && int(ord) < ix.base.n {
		return ix.base.ids.Bytes(int(ord))
	}
	s := ix.ids[int(ord)-ix.baseLen()]
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(s), len(s))
}

// ordID materializes the external ID of a global ordinal. Delta IDs are
// returned without copying; base IDs allocate one string (only the k
// returned hits pay this).
func (ix *Index) ordID(ord int32) string {
	if ix.base != nil && int(ord) < ix.base.n {
		return ix.base.ids.At(int(ord))
	}
	return ix.ids[int(ord)-ix.baseLen()]
}

func (ix *Index) baseLen() int {
	if ix.base == nil {
		return 0
	}
	return ix.base.n
}

// worse reports whether hit a ranks strictly below hit b: lower score, or
// equal score and lexicographically larger ID (so the min-heap keeps the
// smaller IDs on ties, matching the output order's ascending-ID rule).
func (ix *Index) worse(a, b scoredDoc) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return bytesGreater(ix.ordIDBytes(a.doc), ix.ordIDBytes(b.doc))
}

func bytesGreater(a, b []byte) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return len(a) > len(b)
}

// topK selects the k best touched ordinals with a manually-sifted bounded
// min-heap (container/heap would box every element) and returns them best
// first. Caller must hold at least a read lock.
func (ix *Index) topK(scores []float64, touched []int32, k int, sc *searchScratch) []Hit {
	h := sc.heap[:0]
	for _, ord := range touched {
		cand := scoredDoc{doc: ord, score: scores[ord]}
		if len(h) < k {
			h = append(h, cand)
			// Sift up.
			for i := len(h) - 1; i > 0; {
				parent := (i - 1) / 2
				if !ix.worse(h[i], h[parent]) {
					break
				}
				h[i], h[parent] = h[parent], h[i]
				i = parent
			}
			continue
		}
		if ix.worse(cand, h[0]) {
			continue
		}
		h[0] = cand
		ix.siftDown(h, 0)
	}
	out := make([]Hit, len(h))
	// Pop ascending; fill the output back to front for best-first order.
	for i := len(h) - 1; i >= 0; i-- {
		top := h[0]
		out[i] = Hit{ID: ix.ordID(top.doc), Score: top.score}
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		ix.siftDown(h, 0)
	}
	sc.heap = h[:0]
	return out
}

func (ix *Index) siftDown(h []scoredDoc, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && ix.worse(h[l], h[min]) {
			min = l
		}
		if r < len(h) && ix.worse(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// Explain returns the per-term BM25 contributions for a (query, document)
// pair, supporting the provenance requirement (challenge C4): why a piece of
// evidence was retrieved. The map is term -> contribution; missing terms
// contribute zero. ok is false when the document is unknown or deleted.
func (ix *Index) Explain(query, id string) (map[string]float64, bool) {
	terms := ix.analyze(query)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	nLive := ix.liveDocs + ix.baseLive
	if nLive == 0 {
		return nil, false
	}
	// Resolve id to a global ordinal across both tiers.
	ord := int32(-1)
	if o, okID := ix.byID[id]; okID && !ix.deleted[o] {
		ord = int32(ix.baseLen() + o)
	} else if ix.base != nil {
		if bo := ix.base.findDoc(id); bo >= 0 && !ix.baseDeleted[bo] {
			ord = bo
		}
	}
	if ord < 0 {
		return nil, false
	}
	baseN := ix.baseLen()
	var dl float64
	if int(ord) < baseN {
		dl = float64(ix.base.lengths[ord])
	} else {
		dl = float64(ix.lengths[int(ord)-baseN])
	}
	avgdl := float64(ix.totalLen+ix.baseTotalLen) / float64(nLive)
	n := float64(nLive)
	qf := make(map[string]float64, len(terms))
	for _, t := range terms {
		qf[t]++
	}
	out := make(map[string]float64)
	for t, qw := range qf {
		df := 0
		var tf float64
		if ix.base != nil {
			if bt := ix.base.findTerm(t); bt >= 0 {
				pairs := ix.base.pairs(bt)
				for i := 0; i+1 < len(pairs); i += 2 {
					if ix.baseDeleted[pairs[i]] {
						continue
					}
					df++
					if pairs[i] == ord {
						tf = float64(pairs[i+1])
					}
				}
			}
		}
		for _, p := range ix.postings[t] {
			if ix.deleted[p.doc] {
				continue
			}
			df++
			if int32(baseN)+p.doc == ord {
				tf = float64(p.freq)
			}
		}
		if df == 0 || tf == 0 {
			continue
		}
		idf := math.Log(1 + (n-float64(df)+0.5)/(float64(df)+0.5))
		norm := tf * (ix.k1 + 1) / (tf + ix.k1*(1-ix.b+ix.b*dl/avgdl))
		out[t] = qw * idf * norm
	}
	return out, true
}
