package invindex

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/binfmt"
)

// saveToFile freezes ix into a binfmt snapshot file and returns its path.
func saveToFile(t *testing.T, ix *Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bm25.idx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(f); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// sameHits fails the test unless a and b agree on IDs and (within fp
// tolerance) scores.
func sameHits(t *testing.T, label string, a, b []Hit) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: hit counts differ: %v vs %v", label, a, b)
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Errorf("%s: hit %d: %s vs %s", label, i, a[i].ID, b[i].ID)
		}
		if diff := a[i].Score - b[i].Score; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: hit %d score drift: %v vs %v", label, i, a[i].Score, b[i].Score)
		}
	}
}

func TestOpenFileServesBaseSegment(t *testing.T) {
	orig := buildSmall(t)
	path := saveToFile(t, orig)

	ix, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if ix.base == nil {
		t.Fatal("binfmt snapshot did not load as a base segment")
	}
	if ix.Len() != orig.Len() {
		t.Errorf("Len = %d, want %d", ix.Len(), orig.Len())
	}
	if ix.Terms() != orig.Terms() {
		t.Errorf("Terms = %d, want %d", ix.Terms(), orig.Terms())
	}
	if !ix.Contains("d3") || ix.Contains("ghost") {
		t.Error("Contains wrong over base segment")
	}
	for _, q := range []string{"golf prize", "fox springfield", "the quick brown fox"} {
		sameHits(t, q, orig.Search(q, 10), ix.Search(q, 10))
	}

	// Explain must resolve base-tier documents.
	want, ok1 := orig.Explain("golf prize", "d3")
	got, ok2 := ix.Explain("golf prize", "d3")
	if !ok1 || !ok2 {
		t.Fatalf("Explain ok: %v vs %v", ok1, ok2)
	}
	if len(want) != len(got) {
		t.Fatalf("Explain terms differ: %v vs %v", want, got)
	}
	for term, c := range want {
		if diff := got[term] - c; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("Explain[%s] = %v, want %v", term, got[term], c)
		}
	}
}

func TestBaseSegmentFallbackMatchesMmap(t *testing.T) {
	orig := buildSmall(t)
	path := saveToFile(t, orig)
	t.Setenv(binfmt.NoMmapEnv, "1")
	ix, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile (no mmap): %v", err)
	}
	sameHits(t, "fallback", orig.Search("golf prize", 10), ix.Search("golf prize", 10))
}

func TestTwoTierMutation(t *testing.T) {
	path := saveToFile(t, buildSmall(t))
	ix, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}

	// Duplicate IDs are rejected across tiers.
	if err := ix.Add("d3", "dup"); err == nil {
		t.Error("Add accepted a duplicate base-tier id")
	}

	// Deleting a base document flips only the tombstone bitmap.
	if !ix.Delete("d3") {
		t.Fatal("Delete(d3) = false")
	}
	if ix.Delete("d3") {
		t.Error("double Delete(d3) = true")
	}
	if ix.Len() != 4 {
		t.Errorf("Len after base delete = %d", ix.Len())
	}
	for _, h := range ix.Search("golf prize", 10) {
		if h.ID == "d3" {
			t.Error("deleted base doc still retrieved")
		}
	}
	// The id can then be re-added into the delta.
	if err := ix.Add("d3", "golf prize golf prize rematch"); err != nil {
		t.Fatalf("re-Add after base delete: %v", err)
	}
	hits := ix.Search("golf prize", 10)
	if len(hits) == 0 || hits[0].ID != "d3" {
		t.Errorf("re-added doc not retrieved first: %v", hits)
	}

	// New delta docs rank against base docs in one score space.
	if err := ix.Add("d6", "springfield fox derby"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range ix.Search("fox springfield", 10) {
		if h.ID == "d6" {
			found = true
		}
	}
	if !found {
		t.Error("delta doc missing from results")
	}
	if !ix.Contains("d6") || ix.Contains("d99") {
		t.Error("Contains wrong across tiers")
	}

	// Freezing the two-tier index compacts base tombstones away and a
	// reload reproduces the same rankings.
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("Save two-tier: %v", err)
	}
	reloaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load two-tier: %v", err)
	}
	if reloaded.Len() != ix.Len() {
		t.Errorf("reloaded Len = %d, want %d", reloaded.Len(), ix.Len())
	}
	for _, q := range []string{"golf prize", "fox springfield derby", "congressional election"} {
		sameHits(t, q, ix.Search(q, 10), reloaded.Search(q, 10))
	}
}

func TestLegacyGobReadCompat(t *testing.T) {
	orig := buildSmall(t)
	var buf bytes.Buffer
	if err := orig.Freeze().SaveGob(&buf); err != nil {
		t.Fatalf("SaveGob: %v", err)
	}
	gobBytes := append([]byte(nil), buf.Bytes()...)

	ix, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load(gob): %v", err)
	}
	if ix.base != nil {
		t.Error("gob snapshot should decode into the mutable tier")
	}
	sameHits(t, "gob", orig.Search("golf prize", 10), ix.Search("golf prize", 10))

	path := filepath.Join(t.TempDir(), "legacy.idx")
	if err := os.WriteFile(path, gobBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	ix2, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile(gob): %v", err)
	}
	sameHits(t, "gob-file", orig.Search("golf prize", 10), ix2.Search("golf prize", 10))
}

// TestBinarySnapshotCorruption flips every byte of a snapshot and demands
// each flip either fails loudly at open or (for bytes outside any recorded
// section, e.g. alignment padding) leaves search results untouched.
func TestBinarySnapshotCorruption(t *testing.T) {
	orig := buildSmall(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	want := orig.Search("golf prize", 10)

	for off := 0; off < len(good); off++ {
		mut := append([]byte(nil), good...)
		mut[off] ^= 0x5a
		ix, err := loadBinary(mut)
		if err != nil {
			continue
		}
		sameHits(t, fmt.Sprintf("silent flip at %d", off), want, ix.Search("golf prize", 10))
	}

	for _, cut := range []int{0, 1, len(good) / 2, len(good) - 1} {
		if _, err := loadBinary(good[:cut]); err == nil {
			t.Errorf("truncation to %d bytes loaded", cut)
		}
	}
}

// TestStaticValidationRejects hand-crafts structurally-broken snapshots
// (valid container CRCs, invalid column semantics) and demands loud opens.
func TestStaticValidationRejects(t *testing.T) {
	type parts struct {
		meta    staticMeta
		ids     []string
		lengths []int32
		idsort  []uint32
		terms   []string
		postIdx []uint32
		posts   []int32
	}
	valid := func() parts {
		return parts{
			meta:    staticMeta{Family: "bm25", K1: 1.2, B: 0.75, Docs: 2, Terms: 2, Pairs: 3, TotalLen: 5},
			ids:     []string{"a", "b"},
			lengths: []int32{2, 3},
			idsort:  []uint32{0, 1},
			terms:   []string{"alpha", "beta"},
			postIdx: []uint32{0, 1, 3},
			posts:   []int32{0, 2, 0, 1, 1, 2},
		}
	}
	encode := func(t *testing.T, p parts) []byte {
		t.Helper()
		bw := binfmt.NewWriter()
		if err := bw.JSON("meta", p.meta); err != nil {
			t.Fatal(err)
		}
		bw.Strings("ids", p.ids)
		bw.Int32s("lengths", p.lengths)
		bw.Uint32s("idsort", p.idsort)
		bw.Strings("terms", p.terms)
		bw.Uint32s("postidx", p.postIdx)
		bw.Int32s("postings", p.posts)
		var buf bytes.Buffer
		if _, err := bw.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	if _, err := loadBinary(encode(t, valid())); err != nil {
		t.Fatalf("valid hand-built snapshot rejected: %v", err)
	}

	cases := map[string]func(*parts){
		"wrong family":          func(p *parts) { p.meta.Family = "bm42" },
		"doc column mismatch":   func(p *parts) { p.lengths = p.lengths[:1] },
		"idsort out of range":   func(p *parts) { p.idsort[1] = 9 },
		"idsort not increasing": func(p *parts) { p.idsort[0], p.idsort[1] = 1, 0 },
		"terms unsorted":        func(p *parts) { p.terms[0], p.terms[1] = p.terms[1], p.terms[0] },
		"postidx short":         func(p *parts) { p.postIdx = p.postIdx[:2] },
		"postidx nonmonotonic":  func(p *parts) { p.postIdx[1] = 5 },
		"postidx bad start":     func(p *parts) { p.postIdx[0] = 1 },
		"negative length":       func(p *parts) { p.lengths[0] = -1 },
		"total length drift":    func(p *parts) { p.meta.TotalLen = 99 },
		"posting unknown doc":   func(p *parts) { p.posts[0] = 7 },
		"posting zero freq":     func(p *parts) { p.posts[1] = 0 },
		"pair count drift":      func(p *parts) { p.meta.Pairs = 2 },
	}
	for name, mutate := range cases {
		p := valid()
		mutate(&p)
		if _, err := loadBinary(encode(t, p)); err == nil {
			t.Errorf("%s: loaded without error", name)
		}
	}
}

// TestSearchTermsAllocs enforces the zero-alloc hot loop: once scratch
// buffers are warm, a delta-tier search costs only the returned hit slice.
func TestSearchTermsAllocs(t *testing.T) {
	ix := New()
	for i := 0; i < 200; i++ {
		if err := ix.Add(fmt.Sprintf("doc-%04d", i), fmt.Sprintf(
			"golf tournament prize money round %d with springfield results and filler %d", i, i%7)); err != nil {
			t.Fatal(err)
		}
	}
	terms := ix.Analyze("golf prize springfield results")
	// Warm the scratch pool and dense accumulator.
	for i := 0; i < 10; i++ {
		if hits := ix.SearchTerms(terms, 10); len(hits) != 10 {
			t.Fatalf("warmup returned %d hits", len(hits))
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		ix.SearchTerms(terms, 10)
	})
	if allocs > 2 {
		t.Errorf("SearchTerms allocs/op = %.1f, want <= 2", allocs)
	}
}

func FuzzLoadBinarySnapshot(f *testing.F) {
	ix := New()
	for id, text := range map[string]string{
		"d1": "the quick brown fox jumps over the lazy dog",
		"d2": "golf tournament in springfield with record prize money",
		"d3": "the golf open championship prize",
	} {
		if err := ix.Add(id, text); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(binfmt.Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := loadBinary(data)
		if err != nil {
			return
		}
		// Anything that parses must be fully servable.
		_ = loaded.Search("golf prize", 5)
		_ = loaded.Len()
		_ = loaded.Terms()
		var out bytes.Buffer
		if err := loaded.Save(&out); err != nil {
			t.Fatalf("re-save of parsed snapshot failed: %v", err)
		}
	})
}
