package vecindex

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/binfmt"
	"repro/internal/embed"
)

// sameVecHits fails unless a and b agree exactly (IDs and scores).
func sameVecHits(t *testing.T, label string, a, b []Hit) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: hit counts differ: %v vs %v", label, a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("%s: hit %d: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

func writeSnapshotFile(t *testing.T, save func(w io.Writer) error) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := filepath.Join(t.TempDir(), "vec.idx")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, buf.Bytes()
}

func TestOpenVectorFilesServeMapped(t *testing.T) {
	const dim = 12
	vecs := randomVectors(150, dim, 51)
	queries := randomVectors(6, dim, 52)

	flat := NewFlat(dim, Cosine)
	ivf := NewIVF(dim, Cosine, 8, 3, 99)
	lsh := NewLSH(dim, 10, 4, 99)
	for i, v := range vecs {
		id := fmt.Sprintf("v%03d", i)
		for _, add := range []func(string, embed.Vector) error{flat.Add, ivf.Add, lsh.Add} {
			if err := add(id, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	ivf.Train()

	t.Run("flat", func(t *testing.T) {
		path, _ := writeSnapshotFile(t, flat.Save)
		got, err := OpenFlatFile(path)
		if err != nil {
			t.Fatalf("OpenFlatFile: %v", err)
		}
		for qi, q := range queries {
			sameVecHits(t, fmt.Sprintf("query %d", qi), flat.Search(q, 10), got.Search(q, 10))
		}
		// The loaded index stays mutable: vector views are copy-on-grow.
		if err := got.Add("extra", queries[0]); err != nil {
			t.Fatalf("Add after open: %v", err)
		}
		if !got.Remove("v000") {
			t.Error("Remove after open = false")
		}
	})
	t.Run("ivf", func(t *testing.T) {
		path, _ := writeSnapshotFile(t, ivf.Save)
		got, err := OpenIVFFile(path)
		if err != nil {
			t.Fatalf("OpenIVFFile: %v", err)
		}
		for qi, q := range queries {
			sameVecHits(t, fmt.Sprintf("query %d", qi), ivf.Search(q, 10), got.Search(q, 10))
		}
		if err := got.Add("extra", queries[0]); err != nil {
			t.Fatalf("Add after open: %v", err)
		}
	})
	t.Run("lsh", func(t *testing.T) {
		path, _ := writeSnapshotFile(t, lsh.Save)
		got, err := OpenLSHFile(path)
		if err != nil {
			t.Fatalf("OpenLSHFile: %v", err)
		}
		for qi, q := range queries {
			sameVecHits(t, fmt.Sprintf("query %d", qi), lsh.Search(q, 10), got.Search(q, 10))
		}
	})
	t.Run("flat-no-mmap", func(t *testing.T) {
		t.Setenv(binfmt.NoMmapEnv, "1")
		path, _ := writeSnapshotFile(t, flat.Save)
		got, err := OpenFlatFile(path)
		if err != nil {
			t.Fatalf("OpenFlatFile (no mmap): %v", err)
		}
		sameVecHits(t, "fallback", flat.Search(queries[0], 10), got.Search(queries[0], 10))
	})
}

func TestLegacyGobVectorCompat(t *testing.T) {
	const dim = 8
	vecs := randomVectors(60, dim, 71)
	q := randomVectors(1, dim, 72)[0]

	flat := NewFlat(dim, InnerProduct)
	ivf := NewIVF(dim, InnerProduct, 4, 2, 5)
	lsh := NewLSH(dim, 8, 2, 5)
	for i, v := range vecs {
		id := fmt.Sprintf("v%03d", i)
		for _, add := range []func(string, embed.Vector) error{flat.Add, ivf.Add, lsh.Add} {
			if err := add(id, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	ivf.Train()

	var buf bytes.Buffer
	if err := SaveLegacy(flat.Freeze(), &buf); err != nil {
		t.Fatalf("SaveLegacy(flat): %v", err)
	}
	gotFlat, err := LoadFlat(&buf)
	if err != nil {
		t.Fatalf("LoadFlat(gob): %v", err)
	}
	sameVecHits(t, "flat", flat.Search(q, 5), gotFlat.Search(q, 5))

	buf.Reset()
	if err := SaveLegacy(ivf.Freeze(), &buf); err != nil {
		t.Fatalf("SaveLegacy(ivf): %v", err)
	}
	gobBytes := append([]byte(nil), buf.Bytes()...)
	gotIVF, err := LoadIVF(&buf)
	if err != nil {
		t.Fatalf("LoadIVF(gob): %v", err)
	}
	sameVecHits(t, "ivf", ivf.Search(q, 5), gotIVF.Search(q, 5))

	// The file-open path must sniff gob snapshots too.
	path := filepath.Join(t.TempDir(), "legacy.idx")
	if err := os.WriteFile(path, gobBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	gotIVF2, err := OpenIVFFile(path)
	if err != nil {
		t.Fatalf("OpenIVFFile(gob): %v", err)
	}
	sameVecHits(t, "ivf-file", ivf.Search(q, 5), gotIVF2.Search(q, 5))

	buf.Reset()
	if err := SaveLegacy(lsh.Freeze(), &buf); err != nil {
		t.Fatalf("SaveLegacy(lsh): %v", err)
	}
	gotLSH, err := LoadLSH(&buf)
	if err != nil {
		t.Fatalf("LoadLSH(gob): %v", err)
	}
	sameVecHits(t, "lsh", lsh.Search(q, 5), gotLSH.Search(q, 5))
}

// TestVectorSnapshotCorruption flips every byte of a binary snapshot and
// demands each flip either fails loudly or (padding bytes) changes nothing.
func TestVectorSnapshotCorruption(t *testing.T) {
	const dim = 6
	vecs := randomVectors(20, dim, 81)
	sq := NewSQFlat(dim, Cosine, 4)
	for i, v := range vecs {
		if err := sq.Add(fmt.Sprintf("v%02d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sq.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	q := randomVectors(1, dim, 82)[0]
	want := sq.Search(q, 5)

	for off := 0; off < len(good); off++ {
		mut := append([]byte(nil), good...)
		mut[off] ^= 0xa5
		loaded, err := LoadSQ(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		sameVecHits(t, fmt.Sprintf("silent flip at %d", off), want, loaded.Search(q, 5))
	}
	for _, cut := range []int{0, 3, len(good) / 2, len(good) - 1} {
		if _, err := LoadSQ(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncation to %d bytes loaded", cut)
		}
	}

	// Family confusion must be loud: an SQ snapshot is not a flat one.
	if _, err := LoadFlat(bytes.NewReader(good)); err == nil {
		t.Error("LoadFlat accepted an sqflat snapshot")
	}
}
