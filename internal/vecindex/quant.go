package vecindex

import (
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/embed"
)

// DefaultRerank is the candidate multiple used when SQFlat is constructed
// with a non-positive rerank factor: the quantized scan keeps
// DefaultRerank×k candidates for exact re-ranking.
const DefaultRerank = 4

// SQFlat is an exact-layout flat index scanned through int8 scalar
// quantization: every vector is encoded as dim int8 codes against a
// shared per-index [lo, hi] range, the scan ranks all vectors by a
// quantized score whose inner loop is an allocation-free int32
// multiply-accumulate over the code bytes (16x smaller than the float32
// vectors it stands in for, so the scan is memory-bandwidth-cheap), and
// the top rerank×k survivors are re-scored exactly against the retained
// full-precision vectors. With a sufficient rerank multiple the final
// top-k matches Flat almost always (see the recall ablation in
// internal/experiments).
//
// Scoring identity: with Δ = (hi-lo)/255 and m = lo + 128Δ, a code c
// reconstructs as m + cΔ, so for raw code sums sa, sb and the code dot
// product cab the reconstructed inner product is
//
//	d·m² + mΔ·(sa+sb) + Δ²·cab
//
// which needs only the stored per-vector code sums — the hot loop touches
// nothing but int8 codes. L2 uses code square-sums the same way.
type SQFlat struct {
	mu     sync.RWMutex
	metric Metric
	dim    int
	rerank int
	store

	// ranged reports whether lo/hi hold a real range yet (false until the
	// first vector arrives).
	ranged bool
	lo, hi float32
	codes  []int8    // ordinal-parallel, len(ids)*dim, incl. tombstones
	sums   []int32   // per-vector raw code sum
	sqsums []int32   // per-vector raw code square sum
	norms  []float32 // per-vector full-precision Euclidean norm

	// requants counts whole-index requantizations (range extensions).
	requants int
}

// NewSQFlat returns an empty int8 scalar-quantized flat index of
// dimension dim keeping rerank×k candidates for exact re-ranking
// (DefaultRerank when rerank <= 0).
func NewSQFlat(dim int, metric Metric, rerank int) *SQFlat {
	if dim <= 0 {
		panic("vecindex: non-positive dimension")
	}
	if rerank <= 0 {
		rerank = DefaultRerank
	}
	return &SQFlat{metric: metric, dim: dim, rerank: rerank, store: newStore()}
}

// quantScale returns Δ for the current range; a degenerate range (all
// components equal) quantizes everything to code -128 with Δ=0, which the
// scoring identity handles (every approximate score collapses to d·lo²,
// leaving ranking to the exact re-rank).
func (s *SQFlat) quantScale() float32 {
	return (s.hi - s.lo) / 255
}

// quantizeInto appends v's codes to dst using the current range and
// returns the new slice plus the raw code sum and square sum.
func (s *SQFlat) quantizeInto(dst []int8, v embed.Vector) ([]int8, int32, int32) {
	delta := s.quantScale()
	var inv float32
	if delta > 0 {
		inv = 1 / delta
	}
	var sum, sq int32
	for _, x := range v {
		c := int32(-128)
		if delta > 0 {
			q := int32(math.Round(float64((x - s.lo) * inv)))
			if q < 0 {
				q = 0
			} else if q > 255 {
				q = 255
			}
			c = q - 128
		}
		dst = append(dst, int8(c))
		sum += c
		sq += c * c
	}
	return dst, sum, sq
}

// requantizeLocked rebuilds every code against the current range into
// fresh slices (never in place: frozen captures and loaded snapshot views
// may alias the old ones).
func (s *SQFlat) requantizeLocked() {
	codes := make([]int8, 0, len(s.vecs)*s.dim)
	sums := make([]int32, len(s.vecs))
	sqsums := make([]int32, len(s.vecs))
	for i, v := range s.vecs {
		codes, sums[i], sqsums[i] = s.quantizeInto(codes, v)
	}
	s.codes, s.sums, s.sqsums = codes, sums, sqsums
	s.requants++
}

// Add indexes v under id. The vector is copied and quantized; when v
// falls outside the index's quantization range the range is extended and
// every stored code is rebuilt (rare once the range has seen
// representative data — embeddings here are unit-norm, so component
// magnitudes are bounded). Duplicate live IDs and dimension mismatches
// are errors; a removed id may be added again.
func (s *SQFlat) Add(id string, v embed.Vector) error {
	if len(v) != s.dim {
		return fmt.Errorf("vecindex: vector dim %d != index dim %d", len(v), s.dim)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.addLocked(id, v)
	if err != nil {
		return err
	}
	lo, hi := v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	s.norms = append(s.norms, float32(embed.Norm(v)))
	if !s.ranged || lo < s.lo || hi > s.hi {
		if !s.ranged {
			s.lo, s.hi, s.ranged = lo, hi, true
		} else {
			if lo < s.lo {
				s.lo = lo
			}
			if hi > s.hi {
				s.hi = hi
			}
		}
		s.requantizeLocked()
		return nil
	}
	var sum, sq int32
	s.codes, sum, sq = s.quantizeInto(s.codes, v)
	s.sums = append(s.sums, sum)
	s.sqsums = append(s.sqsums, sq)
	return nil
}

// Remove tombstones id's vector, compacting the index (and its code
// columns) once tombstones dominate. Removing an unknown or
// already-removed id is a no-op returning false.
func (s *SQFlat) Remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed, compactDue := s.removeLocked(id)
	if compactDue {
		remap := s.compactLocked()
		codes := make([]int8, 0, s.live*s.dim)
		sums := make([]int32, 0, s.live)
		sqsums := make([]int32, 0, s.live)
		norms := make([]float32, 0, s.live)
		for old, no := range remap {
			if no < 0 {
				continue
			}
			codes = append(codes, s.codes[old*s.dim:(old+1)*s.dim]...)
			sums = append(sums, s.sums[old])
			sqsums = append(sqsums, s.sqsums[old])
			norms = append(norms, s.norms[old])
		}
		s.codes, s.sums, s.sqsums, s.norms = codes, sums, sqsums, norms
	}
	return removed
}

// Len returns the number of live indexed vectors.
func (s *SQFlat) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.live
}

// SetRerank overrides the candidate multiple (<= 0 resets to
// DefaultRerank). A runtime accuracy/speed knob: snapshots store the
// multiple they were built with, and loaders apply the operator's current
// setting on top.
func (s *SQFlat) SetRerank(rerank int) {
	if rerank <= 0 {
		rerank = DefaultRerank
	}
	s.mu.Lock()
	s.rerank = rerank
	s.mu.Unlock()
}

// Requants returns how many whole-index requantizations range extensions
// have forced (an observability hook for tuning).
func (s *SQFlat) Requants() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.requants
}

// sqScratch pools the per-query buffers: the quantized query and the
// candidate heap.
type sqScratch struct {
	qcodes []int8
	cands  []scoredOrd
}

type scoredOrd struct {
	ord   int32
	score float64
}

var sqPool = sync.Pool{New: func() any { return new(sqScratch) }}

// Search implements Searcher: an approximate scan over the int8 codes
// keeps the best rerank×k candidates, which are then re-scored exactly
// against the full-precision vectors.
func (s *SQFlat) Search(q embed.Vector, k int) []Hit {
	if k <= 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.live == 0 || len(q) != s.dim {
		return nil
	}
	kp := k * s.rerank
	if kp < k {
		kp = k
	}

	sc := sqPool.Get().(*sqScratch)
	var qsum, qsq int32
	sc.qcodes, qsum, qsq = s.quantizeInto(sc.qcodes[:0], q)
	qnorm := embed.Norm(q)

	delta := float64(s.quantScale())
	m := float64(s.lo) + 128*delta
	d := float64(s.dim)
	base := d * m * m

	// Approximate pass: bounded min-heap of the kp best quantized scores,
	// ties broken by ascending ordinal for determinism.
	h := sc.cands[:0]
	worse := func(a, b scoredOrd) bool {
		if a.score != b.score {
			return a.score < b.score
		}
		return a.ord > b.ord
	}
	var siftDown func(h []scoredOrd, i int)
	siftDown = func(h []scoredOrd, i int) {
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < len(h) && worse(h[l], h[min]) {
				min = l
			}
			if r < len(h) && worse(h[r], h[min]) {
				min = r
			}
			if min == i {
				return
			}
			h[i], h[min] = h[min], h[i]
			i = min
		}
	}
	for ord := range s.vecs {
		if s.deleted[ord] {
			continue
		}
		cab := dotCodes(sc.qcodes, s.codes[ord*s.dim:(ord+1)*s.dim])
		var approx float64
		switch s.metric {
		case L2:
			// Reconstructed squared distance: Δ²·(Σqa² - 2Σqaqb + Σqb²).
			approx = -delta * delta * float64(qsq-2*cab+s.sqsums[ord])
		default:
			dot := base + m*delta*float64(qsum+s.sums[ord]) + delta*delta*float64(cab)
			if s.metric == Cosine {
				denom := qnorm * float64(s.norms[ord])
				if denom == 0 {
					dot = 0
				} else {
					dot /= denom
				}
			}
			approx = dot
		}
		cand := scoredOrd{ord: int32(ord), score: approx}
		if len(h) < kp {
			h = append(h, cand)
			for i := len(h) - 1; i > 0; {
				parent := (i - 1) / 2
				if !worse(h[i], h[parent]) {
					break
				}
				h[i], h[parent] = h[parent], h[i]
				i = parent
			}
			continue
		}
		if worse(cand, h[0]) {
			continue
		}
		h[0] = cand
		siftDown(h, 0)
	}

	// Exact re-rank of the survivors.
	out := newTopK(k)
	for _, c := range h {
		out.offer(s.ids[c.ord], score(s.metric, q, s.vecs[c.ord]))
	}
	sc.cands = h[:0]
	sqPool.Put(sc)
	return out.results()
}

// dotCodes is the quantized hot loop: an int32 multiply-accumulate over
// two code rows, 4-wide unrolled with the bounds check hoisted. It
// allocates nothing.
func dotCodes(a, b []int8) int32 {
	if len(a) > len(b) {
		a = a[:len(b)]
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aa, bb := a[i:i+4:i+4], b[i:i+4:i+4]
		s0 += int32(aa[0]) * int32(bb[0])
		s1 += int32(aa[1]) * int32(bb[1])
		s2 += int32(aa[2]) * int32(bb[2])
		s3 += int32(aa[3]) * int32(bb[3])
	}
	for ; i < len(a); i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// sqSnapshot is the serialized form of an SQFlat index.
type sqSnapshot struct {
	Metric int
	Dim    int
	Lo, Hi float32
	Rerank int
	IDs    []string
	Vecs   [][]float32
	Codes  []int8
	Sums   []int32
	SqSums []int32
	Norms  []float32
}

// Freeze captures the index's live vectors and quantization state.
// Tombstone-free captures share the live slices (requantization replaces
// the code columns wholesale rather than mutating them, so shared views
// stay consistent); captures with tombstones compact into fresh slices.
func (s *SQFlat) Freeze() Frozen {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := sqSnapshot{
		Metric: int(s.metric), Dim: s.dim, Lo: s.lo, Hi: s.hi, Rerank: s.rerank,
	}
	if s.live == len(s.ids) {
		snap.IDs = s.ids[:len(s.ids):len(s.ids)]
		snap.Codes = s.codes[:len(s.codes):len(s.codes)]
		snap.Sums = s.sums[:len(s.sums):len(s.sums)]
		snap.SqSums = s.sqsums[:len(s.sqsums):len(s.sqsums)]
		snap.Norms = s.norms[:len(s.norms):len(s.norms)]
		snap.Vecs = make([][]float32, len(s.vecs))
		for i, v := range s.vecs {
			snap.Vecs[i] = v
		}
		return &frozenSnap{snap: &snap}
	}
	snap.IDs = make([]string, 0, s.live)
	snap.Vecs = make([][]float32, 0, s.live)
	snap.Codes = make([]int8, 0, s.live*s.dim)
	snap.Sums = make([]int32, 0, s.live)
	snap.SqSums = make([]int32, 0, s.live)
	snap.Norms = make([]float32, 0, s.live)
	for ord, v := range s.vecs {
		if s.deleted[ord] {
			continue
		}
		snap.IDs = append(snap.IDs, s.ids[ord])
		snap.Vecs = append(snap.Vecs, v)
		snap.Codes = append(snap.Codes, s.codes[ord*s.dim:(ord+1)*s.dim]...)
		snap.Sums = append(snap.Sums, s.sums[ord])
		snap.SqSums = append(snap.SqSums, s.sqsums[ord])
		snap.Norms = append(snap.Norms, s.norms[ord])
	}
	return &frozenSnap{snap: &snap}
}

// Save writes the index to w (Freeze + Frozen.Save in one call).
func (s *SQFlat) Save(w io.Writer) error { return s.Freeze().Save(w) }
