package vecindex

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/binfmt"
	"repro/internal/embed"
)

// Frozen is an immutable capture of one index's live contents, produced
// by the Freeze methods under the index's read lock (cheap: ID and vector
// *references* are copied, and vectors are never mutated in place after
// Add) and serialized later by Save with no index locks held. This is the
// clone-or-COW half of a two-phase checkpoint: the live index keeps
// absorbing writes while a frozen capture streams to disk.
type Frozen interface {
	// Save serializes the capture to w in the binfmt columnar layout.
	Save(w io.Writer) error
}

// frozenSnap is the one Frozen implementation behind all families: snap
// holds a pointer to the concrete snapshot struct.
type frozenSnap struct{ snap any }

func (z *frozenSnap) Save(w io.Writer) error {
	bw := binfmt.NewWriter()
	var err error
	switch s := z.snap.(type) {
	case *flatSnapshot:
		err = encodeFlat(bw, s)
	case *ivfSnapshot:
		err = encodeIVF(bw, s)
	case *lshSnapshot:
		err = encodeLSH(bw, s)
	case *sqSnapshot:
		err = encodeSQ(bw, s)
	default:
		err = fmt.Errorf("vecindex: unknown snapshot type %T", z.snap)
	}
	if err != nil {
		return err
	}
	if _, err := bw.WriteTo(w); err != nil {
		return fmt.Errorf("vecindex: write snapshot: %w", err)
	}
	return nil
}

// SaveLegacy serializes a frozen capture to w in the pre-binfmt
// encoding/gob format, kept for read-compatibility tests and startup-time
// comparisons. SQFlat captures have no legacy format.
func SaveLegacy(z Frozen, w io.Writer) error {
	fs, ok := z.(*frozenSnap)
	if !ok {
		return fmt.Errorf("vecindex: unknown Frozen implementation %T", z)
	}
	if _, isSQ := fs.snap.(*sqSnapshot); isSQ {
		return fmt.Errorf("vecindex: SQFlat snapshots have no legacy gob format")
	}
	if err := gob.NewEncoder(w).Encode(fs.snap); err != nil {
		return fmt.Errorf("vecindex: encode snapshot: %w", err)
	}
	return nil
}

// sniffBinary splits an arbitrary snapshot stream by format magic: binfmt
// containers come back as a verified reader, anything else as a buffered
// stream for the legacy gob decoders.
func sniffBinary(r io.Reader) (*binfmt.Reader, io.Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binfmt.Magic))
	if err != nil || string(head) != binfmt.Magic {
		return nil, br, nil
	}
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, nil, fmt.Errorf("vecindex: read snapshot: %w", err)
	}
	fr, err := binfmt.NewReader(data)
	if err != nil {
		return nil, nil, fmt.Errorf("vecindex: %w", err)
	}
	return fr, nil, nil
}

// openBinaryFile maps path as a binfmt container if its magic matches;
// otherwise it returns an open file positioned at the start for the gob
// decoders (the caller closes it).
func openBinaryFile(path string) (*binfmt.Reader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	var head [len(binfmt.Magic)]byte
	_, rerr := io.ReadFull(f, head[:])
	if rerr == nil && string(head[:]) == binfmt.Magic {
		f.Close()
		fr, err := binfmt.OpenFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("vecindex: %w", err)
		}
		return fr, nil, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("vecindex: %w", err)
	}
	return nil, f, nil
}

// flatSnapshot is the serialized form of a Flat index (the analogue of
// Faiss's write_index for IndexFlat).
type flatSnapshot struct {
	Metric int
	Dim    int
	IDs    []string
	Vecs   [][]float32
}

// Freeze captures the index's live vectors. Tombstoned (removed) vectors
// are compacted away, so a load round-trip yields only live entries.
func (f *Flat) Freeze() Frozen {
	f.mu.RLock()
	defer f.mu.RUnlock()
	snap := flatSnapshot{
		Metric: int(f.metric),
		Dim:    f.dim,
		IDs:    make([]string, 0, f.live),
		Vecs:   make([][]float32, 0, f.live),
	}
	for i, v := range f.vecs {
		if f.deleted[i] {
			continue
		}
		snap.IDs = append(snap.IDs, f.ids[i])
		snap.Vecs = append(snap.Vecs, v)
	}
	return &frozenSnap{snap: &snap}
}

// Save writes the index to w in the binfmt columnar layout (Freeze +
// Frozen.Save in one call).
func (f *Flat) Save(w io.Writer) error { return f.Freeze().Save(w) }

// LoadFlat reads a snapshot produced by Flat.Save (binfmt, detected by
// its format magic) or by a pre-binfmt release (gob). Streams read this
// way are fully buffered; use OpenFlatFile to serve from a mapped file.
func LoadFlat(r io.Reader) (*Flat, error) {
	fr, gr, err := sniffBinary(r)
	if err != nil {
		return nil, err
	}
	if fr != nil {
		return decodeFlat(fr)
	}
	return loadFlatGob(gr)
}

// OpenFlatFile opens a snapshot file, memory-mapping binfmt snapshots
// (vectors are served as zero-copy views of the mapping) and decoding
// legacy gob snapshots eagerly.
func OpenFlatFile(path string) (*Flat, error) {
	fr, f, err := openBinaryFile(path)
	if err != nil {
		return nil, err
	}
	if fr != nil {
		return decodeFlat(fr)
	}
	defer f.Close()
	return loadFlatGob(bufio.NewReader(f))
}

func loadFlatGob(r io.Reader) (*Flat, error) {
	var snap flatSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("vecindex: decode snapshot: %w", err)
	}
	if snap.Dim <= 0 {
		return nil, fmt.Errorf("vecindex: snapshot has invalid dimension %d", snap.Dim)
	}
	if err := checkVectors(snap.IDs, snap.Vecs, snap.Dim); err != nil {
		return nil, err
	}
	f := NewFlat(snap.Dim, Metric(snap.Metric))
	for i, id := range snap.IDs {
		if err := f.Add(id, embed.Vector(snap.Vecs[i])); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// checkVectors validates the shared id/vector section of a snapshot.
func checkVectors(ids []string, vecs [][]float32, dim int) error {
	if len(ids) != len(vecs) {
		return fmt.Errorf("vecindex: snapshot id/vector count mismatch (%d vs %d)", len(ids), len(vecs))
	}
	for i, v := range vecs {
		if len(v) != dim {
			return fmt.Errorf("vecindex: snapshot vector %d has dim %d, want %d", i, len(v), dim)
		}
	}
	return nil
}

// ivfSnapshot is the serialized form of an IVF index (Faiss write_index
// for IndexIVFFlat). Cell assignments are stored explicitly rather than
// recomputed at load: k-means may terminate with assignments one E-step
// behind the final centroids, so "assign to nearest centroid on load"
// would silently shuffle vectors across cells and change probe results.
type ivfSnapshot struct {
	Metric int
	Dim    int
	NList  int
	NProbe int
	Seed   uint64

	Trained   bool
	Centroids [][]float32
	IDs       []string
	Vecs      [][]float32
	// Cells[i] is the cell of Vecs[i]; empty when untrained.
	Cells []int32
}

// Freeze captures the index's live vectors, trained centroids, and exact
// cell assignments. Tombstoned vectors are compacted away. Centroid
// references are safe to share: Train replaces the centroid slice
// wholesale, never mutating vectors in place.
func (ix *IVF) Freeze() Frozen {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	snap := ivfSnapshot{
		Metric: int(ix.metric), Dim: ix.dim, NList: ix.nlist, NProbe: ix.nprobe, Seed: ix.seed,
		Trained: ix.trained,
		IDs:     make([]string, 0, ix.live),
		Vecs:    make([][]float32, 0, ix.live),
	}
	for _, c := range ix.centroids {
		snap.Centroids = append(snap.Centroids, c)
	}
	// remap[ord] is the compacted index of live ordinal ord.
	remap := make(map[int]int, ix.live)
	for ord, v := range ix.vecs {
		if ix.deleted[ord] {
			continue
		}
		remap[ord] = len(snap.IDs)
		snap.IDs = append(snap.IDs, ix.ids[ord])
		snap.Vecs = append(snap.Vecs, v)
	}
	if ix.trained {
		snap.Cells = make([]int32, len(snap.IDs))
		for ci, cell := range ix.cells {
			for _, ord := range cell {
				if i, ok := remap[ord]; ok {
					snap.Cells[i] = int32(ci)
				}
			}
		}
	}
	return &frozenSnap{snap: &snap}
}

// Save writes the index to w in the binfmt columnar layout (Freeze +
// Frozen.Save in one call). Cell assignments are preserved exactly.
func (ix *IVF) Save(w io.Writer) error { return ix.Freeze().Save(w) }

// LoadIVF reads a snapshot produced by IVF.Save (binfmt or legacy gob),
// restoring the trained centroids and exact cell assignments.
func LoadIVF(r io.Reader) (*IVF, error) {
	fr, gr, err := sniffBinary(r)
	if err != nil {
		return nil, err
	}
	if fr != nil {
		return decodeIVF(fr)
	}
	return loadIVFGob(gr)
}

// OpenIVFFile opens a snapshot file, memory-mapping binfmt snapshots and
// decoding legacy gob snapshots eagerly.
func OpenIVFFile(path string) (*IVF, error) {
	fr, f, err := openBinaryFile(path)
	if err != nil {
		return nil, err
	}
	if fr != nil {
		return decodeIVF(fr)
	}
	defer f.Close()
	return loadIVFGob(bufio.NewReader(f))
}

func loadIVFGob(r io.Reader) (*IVF, error) {
	var snap ivfSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("vecindex: decode snapshot: %w", err)
	}
	if snap.Dim <= 0 || snap.NList <= 0 || snap.NProbe <= 0 {
		return nil, fmt.Errorf("vecindex: IVF snapshot has invalid parameters (dim=%d nlist=%d nprobe=%d)", snap.Dim, snap.NList, snap.NProbe)
	}
	if err := checkVectors(snap.IDs, snap.Vecs, snap.Dim); err != nil {
		return nil, err
	}
	ix := NewIVF(snap.Dim, Metric(snap.Metric), snap.NList, snap.NProbe, snap.Seed)
	if snap.Trained {
		if len(snap.Cells) != len(snap.IDs) {
			return nil, fmt.Errorf("vecindex: IVF snapshot cell/vector count mismatch (%d vs %d)", len(snap.Cells), len(snap.IDs))
		}
		ix.trained = true
		ix.centroids = make([]embed.Vector, len(snap.Centroids))
		for i, c := range snap.Centroids {
			if len(c) != snap.Dim {
				return nil, fmt.Errorf("vecindex: IVF snapshot centroid %d has dim %d, want %d", i, len(c), snap.Dim)
			}
			ix.centroids[i] = c
		}
		ix.cells = make([][]int, len(snap.Centroids))
	}
	for i, id := range snap.IDs {
		ord, err := ix.addLocked(id, embed.Vector(snap.Vecs[i]))
		if err != nil {
			return nil, err
		}
		if snap.Trained {
			ci := int(snap.Cells[i])
			if ci < 0 || ci >= len(ix.cells) {
				return nil, fmt.Errorf("vecindex: IVF snapshot vector %d references unknown cell %d", i, ci)
			}
			ix.cells[ci] = append(ix.cells[ci], ord)
		}
	}
	return ix, nil
}

// lshSnapshot is the serialized form of an LSH index. The hyperplane
// family is a pure function of (dim, nbits, ntables, seed), so only the
// parameters and live vectors are stored; load re-hashes each vector into
// identical buckets.
type lshSnapshot struct {
	Dim     int
	NBits   int
	NTables int
	Seed    uint64
	IDs     []string
	Vecs    [][]float32
}

// Freeze captures the index's live vectors. Tombstoned vectors are
// compacted away; the hyperplane family is a pure function of the stored
// parameters, so buckets are not captured.
func (ix *LSH) Freeze() Frozen {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	snap := lshSnapshot{
		Dim: ix.dim, NBits: ix.nbits, NTables: ix.ntables, Seed: ix.seed,
		IDs:  make([]string, 0, ix.live),
		Vecs: make([][]float32, 0, ix.live),
	}
	for ord, v := range ix.vecs {
		if ix.deleted[ord] {
			continue
		}
		snap.IDs = append(snap.IDs, ix.ids[ord])
		snap.Vecs = append(snap.Vecs, v)
	}
	return &frozenSnap{snap: &snap}
}

// Save writes the index to w in the binfmt columnar layout (Freeze +
// Frozen.Save in one call).
func (ix *LSH) Save(w io.Writer) error { return ix.Freeze().Save(w) }

// LoadLSH reads a snapshot produced by LSH.Save (binfmt or legacy gob).
func LoadLSH(r io.Reader) (*LSH, error) {
	fr, gr, err := sniffBinary(r)
	if err != nil {
		return nil, err
	}
	if fr != nil {
		return decodeLSH(fr)
	}
	return loadLSHGob(gr)
}

// OpenLSHFile opens a snapshot file, memory-mapping binfmt snapshots
// (vectors are zero-copy views; signatures are re-hashed eagerly) and
// decoding legacy gob snapshots.
func OpenLSHFile(path string) (*LSH, error) {
	fr, f, err := openBinaryFile(path)
	if err != nil {
		return nil, err
	}
	if fr != nil {
		return decodeLSH(fr)
	}
	defer f.Close()
	return loadLSHGob(bufio.NewReader(f))
}

// LoadSQ reads a snapshot produced by SQFlat.Save. There is no legacy
// format: quantized indexes postdate the binfmt container.
func LoadSQ(r io.Reader) (*SQFlat, error) {
	fr, _, err := sniffBinary(r)
	if err != nil {
		return nil, err
	}
	if fr == nil {
		return nil, fmt.Errorf("vecindex: not a binfmt snapshot (SQFlat has no legacy format)")
	}
	return decodeSQ(fr)
}

// OpenSQFile opens an SQFlat snapshot file, memory-mapping the container
// so vectors and code columns are zero-copy views.
func OpenSQFile(path string) (*SQFlat, error) {
	fr, f, err := openBinaryFile(path)
	if err != nil {
		return nil, err
	}
	if fr == nil {
		f.Close()
		return nil, fmt.Errorf("vecindex: %s is not a binfmt snapshot (SQFlat has no legacy format)", path)
	}
	return decodeSQ(fr)
}

func loadLSHGob(r io.Reader) (*LSH, error) {
	var snap lshSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("vecindex: decode snapshot: %w", err)
	}
	if snap.Dim <= 0 || snap.NBits <= 0 || snap.NBits > 64 || snap.NTables <= 0 {
		return nil, fmt.Errorf("vecindex: LSH snapshot has invalid parameters (dim=%d nbits=%d ntables=%d)", snap.Dim, snap.NBits, snap.NTables)
	}
	if err := checkVectors(snap.IDs, snap.Vecs, snap.Dim); err != nil {
		return nil, err
	}
	ix := NewLSH(snap.Dim, snap.NBits, snap.NTables, snap.Seed)
	for i, id := range snap.IDs {
		if err := ix.Add(id, embed.Vector(snap.Vecs[i])); err != nil {
			return nil, err
		}
	}
	return ix, nil
}
