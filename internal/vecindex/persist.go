package vecindex

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/embed"
)

// flatSnapshot is the serialized form of a Flat index (the analogue of
// Faiss's write_index for IndexFlat).
type flatSnapshot struct {
	Metric int
	Dim    int
	IDs    []string
	Vecs   [][]float32
}

// Save writes the index to w using encoding/gob. Tombstoned (removed)
// vectors are compacted away, so a load round-trip yields only live entries.
func (f *Flat) Save(w io.Writer) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	snap := flatSnapshot{
		Metric: int(f.metric),
		Dim:    f.dim,
		IDs:    make([]string, 0, f.live),
		Vecs:   make([][]float32, 0, f.live),
	}
	for i, v := range f.vecs {
		if f.deleted[i] {
			continue
		}
		snap.IDs = append(snap.IDs, f.ids[i])
		snap.Vecs = append(snap.Vecs, v)
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("vecindex: encode snapshot: %w", err)
	}
	return nil
}

// LoadFlat reads a snapshot produced by Flat.Save.
func LoadFlat(r io.Reader) (*Flat, error) {
	var snap flatSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("vecindex: decode snapshot: %w", err)
	}
	if snap.Dim <= 0 {
		return nil, fmt.Errorf("vecindex: snapshot has invalid dimension %d", snap.Dim)
	}
	if len(snap.IDs) != len(snap.Vecs) {
		return nil, fmt.Errorf("vecindex: snapshot id/vector count mismatch (%d vs %d)", len(snap.IDs), len(snap.Vecs))
	}
	f := NewFlat(snap.Dim, Metric(snap.Metric))
	for i, id := range snap.IDs {
		if len(snap.Vecs[i]) != snap.Dim {
			return nil, fmt.Errorf("vecindex: snapshot vector %d has dim %d, want %d", i, len(snap.Vecs[i]), snap.Dim)
		}
		if err := f.Add(id, embed.Vector(snap.Vecs[i])); err != nil {
			return nil, err
		}
	}
	return f, nil
}
