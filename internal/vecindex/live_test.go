package vecindex

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/embed"
)

// liveIndex is the mutate+search surface shared by all three index types.
type liveIndex interface {
	Searcher
	Add(id string, v embed.Vector) error
	Remove(id string) bool
}

const liveDim = 32

func liveVec(i int) embed.Vector {
	emb := embed.NewEmbedder(liveDim, 7)
	return emb.EmbedText(fmt.Sprintf("document %d about topic %d", i, i%11))
}

// liveIndexes returns one fresh index per type; IVF is trained over an
// initial batch so post-train Adds exercise cell assignment.
func liveIndexes(t *testing.T, pretrain int) map[string]liveIndex {
	t.Helper()
	ivf := NewIVF(liveDim, Cosine, 4, 2, 1)
	out := map[string]liveIndex{
		"flat": NewFlat(liveDim, Cosine),
		"ivf":  ivf,
		"lsh":  NewLSH(liveDim, 8, 4, 1),
	}
	for name, ix := range out {
		for i := 0; i < pretrain; i++ {
			if err := ix.Add(fmt.Sprintf("seed%d", i), liveVec(i)); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	ivf.Train()
	return out
}

func hasID(hits []Hit, id string) bool {
	for _, h := range hits {
		if h.ID == id {
			return true
		}
	}
	return false
}

// TestRemoveAndReadd checks the live mutation contract on every index type:
// removed vectors disappear from results, removal is idempotent, and a
// removed id can be indexed again.
func TestRemoveAndReadd(t *testing.T) {
	for name, ix := range liveIndexes(t, 20) {
		t.Run(name, func(t *testing.T) {
			v := liveVec(3)
			if hits := ix.Search(v, 5); !hasID(hits, "seed3") {
				t.Fatalf("seed3 not retrievable before removal: %v", hits)
			}
			if !ix.Remove("seed3") {
				t.Fatal("Remove(seed3) = false, want true")
			}
			if ix.Remove("seed3") {
				t.Fatal("second Remove(seed3) = true, want false")
			}
			if ix.Remove("nope") {
				t.Fatal("Remove(nope) = true, want false")
			}
			if got := ix.Len(); got != 19 {
				t.Fatalf("Len = %d after removal, want 19", got)
			}
			if hits := ix.Search(v, 20); hasID(hits, "seed3") {
				t.Fatalf("seed3 still retrieved after removal: %v", hits)
			}
			// Re-add under the same id with different content.
			if err := ix.Add("seed3", liveVec(100)); err != nil {
				t.Fatalf("re-add: %v", err)
			}
			if err := ix.Add("seed3", liveVec(100)); err == nil {
				t.Fatal("duplicate live add succeeded, want error")
			}
			if hits := ix.Search(liveVec(100), 5); !hasID(hits, "seed3") {
				t.Fatalf("re-added seed3 not retrievable: %v", hits)
			}
		})
	}
}

// TestIVFPostTrainAddSearchable checks that vectors added after Train are
// assigned to trained cells and found by probing (not just by the untrained
// fallback scan).
func TestIVFPostTrainAddSearchable(t *testing.T) {
	ix := NewIVF(liveDim, Cosine, 4, 4, 1) // probe all cells: recall is exact
	for i := 0; i < 40; i++ {
		if err := ix.Add(fmt.Sprintf("seed%d", i), liveVec(i)); err != nil {
			t.Fatal(err)
		}
	}
	ix.Train()
	if !ix.Trained() {
		t.Fatal("index not trained")
	}
	if err := ix.Add("late", liveVec(999)); err != nil {
		t.Fatal(err)
	}
	if hits := ix.Search(liveVec(999), 3); !hasID(hits, "late") {
		t.Fatalf("post-train add not retrievable: %v", hits)
	}
	// Retrain compacts tombstones and keeps the late vector.
	ix.Remove("seed0")
	ix.Train()
	if hits := ix.Search(liveVec(999), 3); !hasID(hits, "late") {
		t.Fatalf("late vector lost by retrain: %v", hits)
	}
	if hits := ix.Search(liveVec(0), 40); hasID(hits, "seed0") {
		t.Fatalf("tombstoned seed0 resurfaced after retrain: %v", hits)
	}
}

// TestChurnCompaction drives the remove/re-add cycle far past the
// compaction threshold on every index type: the live set must stay intact
// and searchable throughout (this is the hot path of live KG entity
// re-indexing).
func TestChurnCompaction(t *testing.T) {
	for name, ix := range liveIndexes(t, 30) {
		t.Run(name, func(t *testing.T) {
			// 300 churn cycles on one id → ~300 tombstones, several
			// compactions under the dead > live && dead >= 64 policy.
			for cycle := 0; cycle < 300; cycle++ {
				if !ix.Remove("seed7") {
					t.Fatalf("cycle %d: Remove(seed7) = false", cycle)
				}
				if err := ix.Add("seed7", liveVec(7)); err != nil {
					t.Fatalf("cycle %d: re-add: %v", cycle, err)
				}
			}
			if got := ix.Len(); got != 30 {
				t.Fatalf("Len = %d after churn, want 30", got)
			}
			for i := 0; i < 30; i++ {
				id := fmt.Sprintf("seed%d", i)
				if hits := ix.Search(liveVec(i), 30); !hasID(hits, id) {
					t.Fatalf("%s lost after churn compaction: %v", id, hits)
				}
			}
		})
	}
}

// TestConcurrentAddSearch hammers each index type with concurrent writers,
// removers, and searchers; run under -race it proves the locking discipline,
// and the final state must account for every live vector.
func TestConcurrentAddSearch(t *testing.T) {
	const (
		writers   = 4
		perWriter = 50
	)
	for name, ix := range liveIndexes(t, 10) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			stop := make(chan struct{})
			// Searchers run until writers finish.
			for s := 0; s < 2; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					q := liveVec(s)
					for {
						select {
						case <-stop:
							return
						default:
							ix.Search(q, 5)
						}
					}
				}(s)
			}
			// One remover churns the seed ids.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					ix.Remove(fmt.Sprintf("seed%d", i))
				}
			}()
			var writerWg sync.WaitGroup
			for w := 0; w < writers; w++ {
				writerWg.Add(1)
				go func(w int) {
					defer writerWg.Done()
					for i := 0; i < perWriter; i++ {
						id := fmt.Sprintf("w%d-%d", w, i)
						if err := ix.Add(id, liveVec(w*1000+i)); err != nil {
							t.Errorf("add %s: %v", id, err)
						}
					}
				}(w)
			}
			writerWg.Wait()
			close(stop)
			wg.Wait()
			if got := ix.Len(); got != writers*perWriter {
				t.Fatalf("Len = %d, want %d live vectors", got, writers*perWriter)
			}
			if hits := ix.Search(liveVec(2*1000+7), 10); !hasID(hits, "w2-7") {
				t.Fatalf("concurrently added vector not retrievable: %v", hits)
			}
		})
	}
}
