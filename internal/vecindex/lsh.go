package vecindex

import (
	"fmt"
	"sync"

	"repro/internal/detrand"
	"repro/internal/embed"
)

// LSH is a random-hyperplane locality-sensitive hash index for cosine
// similarity (Charikar's SimHash family, as in Faiss IndexLSH). Vectors are
// hashed into ntables independent signature tables of nbits bits each;
// Search unions the query's buckets and ranks candidates exactly.
//
// The index is safe for concurrent Add, Remove, and Search; removal
// tombstones the vector (its bucket entries are skipped at search time) and
// the id may be re-added afterwards.
type LSH struct {
	mu      sync.RWMutex
	dim     int
	nbits   int
	ntables int
	// seed is kept so a snapshot can reconstruct the identical hyperplane
	// family (see persist.go).
	seed uint64

	planes [][]embed.Vector // table -> bit -> hyperplane normal
	tables []map[uint64][]int
	store
}

// NewLSH returns an LSH index with ntables hash tables of nbits each.
// nbits must be in (0, 64].
func NewLSH(dim, nbits, ntables int, seed uint64) *LSH {
	if dim <= 0 || nbits <= 0 || nbits > 64 || ntables <= 0 {
		panic("vecindex: invalid LSH parameters")
	}
	ix := &LSH{
		dim: dim, nbits: nbits, ntables: ntables, seed: seed,
		planes: make([][]embed.Vector, ntables),
		tables: make([]map[uint64][]int, ntables),
		store:  newStore(),
	}
	for t := 0; t < ntables; t++ {
		ix.tables[t] = make(map[uint64][]int)
		ix.planes[t] = make([]embed.Vector, nbits)
		for b := 0; b < nbits; b++ {
			r := detrand.New(seed, "lsh", fmt.Sprintf("%d:%d", t, b))
			p := make(embed.Vector, dim)
			for i := range p {
				p[i] = float32(r.NormFloat64())
			}
			ix.planes[t][b] = p
		}
	}
	return ix
}

// signature computes the nbits-bit hash of v in table t.
func (ix *LSH) signature(t int, v embed.Vector) uint64 {
	var sig uint64
	for b, p := range ix.planes[t] {
		if embed.Dot(p, v) >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

// Add indexes v under id. Duplicate live IDs are errors; a removed id may
// be added again.
func (ix *LSH) Add(id string, v embed.Vector) error {
	if len(v) != ix.dim {
		return fmt.Errorf("vecindex: vector dim %d != index dim %d", len(v), ix.dim)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ord, err := ix.addLocked(id, v)
	if err != nil {
		return err
	}
	for t := 0; t < ix.ntables; t++ {
		sig := ix.signature(t, v)
		ix.tables[t][sig] = append(ix.tables[t][sig], ord)
	}
	return nil
}

// Remove tombstones id's vector. Removing an unknown or already-removed id
// is a no-op returning false. Bucket entries stay in place and are skipped
// at search time until tombstones dominate, at which point the index
// compacts (bucket ordinals are remapped; no re-hashing is needed).
func (ix *LSH) Remove(id string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	removed, compactDue := ix.removeLocked(id)
	if compactDue {
		remap := ix.compactLocked()
		for t := range ix.tables {
			for sig, bucket := range ix.tables[t] {
				kept := bucket[:0]
				for _, ord := range bucket {
					if no := remap[ord]; no >= 0 {
						kept = append(kept, no)
					}
				}
				if len(kept) == 0 {
					delete(ix.tables[t], sig)
				} else {
					ix.tables[t][sig] = kept
				}
			}
		}
	}
	return removed
}

// Len returns the number of live indexed vectors.
func (ix *LSH) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.live
}

// Search implements Searcher: union the query's buckets across tables, then
// rank the candidate set by exact cosine similarity.
func (ix *LSH) Search(q embed.Vector, k int) []Hit {
	if k <= 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	seen := make(map[int]struct{})
	h := newTopK(k)
	for t := 0; t < ix.ntables; t++ {
		sig := ix.signature(t, q)
		for _, ord := range ix.tables[t][sig] {
			if _, dup := seen[ord]; dup {
				continue
			}
			seen[ord] = struct{}{}
			if ix.deleted[ord] {
				continue
			}
			h.offer(ix.ids[ord], embed.Cosine(q, ix.vecs[ord]))
		}
	}
	return h.results()
}
