package vecindex

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestFlatSaveLoadRoundtrip(t *testing.T) {
	vecs := randomVectors(100, 8, 31)
	f := NewFlat(8, Cosine)
	for i, v := range vecs {
		if err := f.Add(fmt.Sprintf("v%03d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadFlat(&buf)
	if err != nil {
		t.Fatalf("LoadFlat: %v", err)
	}
	if loaded.Len() != f.Len() {
		t.Fatalf("Len drifted: %d vs %d", loaded.Len(), f.Len())
	}
	for _, q := range randomVectors(10, 8, 99) {
		a, b := f.Search(q, 5), loaded.Search(q, 5)
		if len(a) != len(b) {
			t.Fatalf("hit counts differ")
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
				t.Errorf("hit %d drifted: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
}

func TestFlatSaveLoadProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		count := int(n%40) + 1
		vecs := randomVectors(count, 4, seed)
		ix := NewFlat(4, L2)
		for i, v := range vecs {
			if err := ix.Add(fmt.Sprintf("v%d", i), v); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			return false
		}
		loaded, err := LoadFlat(&buf)
		if err != nil {
			return false
		}
		q := vecs[0]
		a, b := ix.Search(q, 3), loaded.Search(q, 3)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLoadFlatMalformed(t *testing.T) {
	if _, err := LoadFlat(bytes.NewBufferString("junk")); err == nil {
		t.Error("junk snapshot accepted")
	}
}
