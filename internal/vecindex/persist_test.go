package vecindex

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/embed"
)

func TestFlatSaveLoadRoundtrip(t *testing.T) {
	vecs := randomVectors(100, 8, 31)
	f := NewFlat(8, Cosine)
	for i, v := range vecs {
		if err := f.Add(fmt.Sprintf("v%03d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadFlat(&buf)
	if err != nil {
		t.Fatalf("LoadFlat: %v", err)
	}
	if loaded.Len() != f.Len() {
		t.Fatalf("Len drifted: %d vs %d", loaded.Len(), f.Len())
	}
	for _, q := range randomVectors(10, 8, 99) {
		a, b := f.Search(q, 5), loaded.Search(q, 5)
		if len(a) != len(b) {
			t.Fatalf("hit counts differ")
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
				t.Errorf("hit %d drifted: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
}

func TestFlatSaveLoadProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		count := int(n%40) + 1
		vecs := randomVectors(count, 4, seed)
		ix := NewFlat(4, L2)
		for i, v := range vecs {
			if err := ix.Add(fmt.Sprintf("v%d", i), v); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			return false
		}
		loaded, err := LoadFlat(&buf)
		if err != nil {
			return false
		}
		q := vecs[0]
		a, b := ix.Search(q, 3), loaded.Search(q, 3)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLoadFlatMalformed(t *testing.T) {
	if _, err := LoadFlat(bytes.NewBufferString("junk")); err == nil {
		t.Error("junk snapshot accepted")
	}
}

// searchesAgree fails the test when the two indexes rank any of the given
// queries differently.
func searchesAgree(t *testing.T, a, b Searcher, queries []embed.Vector, k int) {
	t.Helper()
	for qi, q := range queries {
		ha, hb := a.Search(q, k), b.Search(q, k)
		if len(ha) != len(hb) {
			t.Fatalf("query %d: hit counts differ (%d vs %d)", qi, len(ha), len(hb))
		}
		for i := range ha {
			if ha[i] != hb[i] {
				t.Errorf("query %d hit %d drifted: %+v vs %+v", qi, i, ha[i], hb[i])
			}
		}
	}
}

func TestIVFSaveLoadRoundtrip(t *testing.T) {
	for _, trained := range []bool{false, true} {
		t.Run(fmt.Sprintf("trained=%v", trained), func(t *testing.T) {
			vecs := randomVectors(120, 8, 7)
			ix := NewIVF(8, Cosine, 8, 3, 42)
			for i, v := range vecs {
				if err := ix.Add(fmt.Sprintf("v%03d", i), v); err != nil {
					t.Fatal(err)
				}
			}
			if trained {
				ix.Train()
				// Post-train adds and a removal exercise the incremental
				// cell assignment and tombstone paths.
				for i, v := range randomVectors(10, 8, 8) {
					if err := ix.Add(fmt.Sprintf("post%02d", i), v); err != nil {
						t.Fatal(err)
					}
				}
				ix.Remove("v005")
			}
			var buf bytes.Buffer
			if err := ix.Save(&buf); err != nil {
				t.Fatalf("Save: %v", err)
			}
			loaded, err := LoadIVF(&buf)
			if err != nil {
				t.Fatalf("LoadIVF: %v", err)
			}
			if loaded.Len() != ix.Len() {
				t.Fatalf("Len drifted: %d vs %d", loaded.Len(), ix.Len())
			}
			if loaded.Trained() != ix.Trained() {
				t.Fatalf("Trained drifted: %v vs %v", loaded.Trained(), ix.Trained())
			}
			searchesAgree(t, ix, loaded, randomVectors(10, 8, 99), 7)

			// The loaded index keeps working: post-load adds land in cells.
			if err := loaded.Add("new", randomVectors(1, 8, 5)[0]); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLSHSaveLoadRoundtrip(t *testing.T) {
	vecs := randomVectors(80, 8, 11)
	ix := NewLSH(8, 12, 4, 42)
	for i, v := range vecs {
		if err := ix.Add(fmt.Sprintf("v%03d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	ix.Remove("v010")
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadLSH(&buf)
	if err != nil {
		t.Fatalf("LoadLSH: %v", err)
	}
	if loaded.Len() != ix.Len() {
		t.Fatalf("Len drifted: %d vs %d", loaded.Len(), ix.Len())
	}
	searchesAgree(t, ix, loaded, randomVectors(10, 8, 99), 7)
}

func TestLoadIVFLSHMalformed(t *testing.T) {
	if _, err := LoadIVF(bytes.NewBufferString("junk")); err == nil {
		t.Error("junk IVF snapshot accepted")
	}
	if _, err := LoadLSH(bytes.NewBufferString("junk")); err == nil {
		t.Error("junk LSH snapshot accepted")
	}
}
