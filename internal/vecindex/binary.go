package vecindex

import (
	"fmt"
	"math"

	"repro/internal/binfmt"
	"repro/internal/embed"
)

// Binary snapshot layout shared by all families: a "meta" JSON section
// naming the family and its parameters, an "ids" string column, and a
// "vecs" float32 section holding all vectors back to back. Loaders slice
// individual vectors out of the blob without copying, so an mmap-backed
// container serves searches before most vector pages ever fault in.
// Family-specific columns: IVF adds "centroids" and "cells"; SQFlat adds
// "codes", "sums", "sqsums", and "norms". Every structure that retains
// blob views also retains the binfmt.Reader (store.pin), keeping the
// mapping alive.

// binMeta is the JSON "meta" section of a vector snapshot.
type binMeta struct {
	Family string `json:"family"`
	Metric int    `json:"metric"`
	Dim    int    `json:"dim"`
	Count  int    `json:"count"`

	// IVF
	NList     int    `json:"nlist,omitempty"`
	NProbe    int    `json:"nprobe,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	Trained   bool   `json:"trained,omitempty"`
	Centroids int    `json:"centroids,omitempty"`

	// LSH
	NBits   int `json:"nbits,omitempty"`
	NTables int `json:"ntables,omitempty"`

	// SQFlat
	Lo     float64 `json:"lo,omitempty"`
	Hi     float64 `json:"hi,omitempty"`
	Rerank int     `json:"rerank,omitempty"`
}

// flattenVecs packs rows into one contiguous float32 blob.
func flattenVecs(rows [][]float32, dim int) []float32 {
	blob := make([]float32, 0, len(rows)*dim)
	for _, r := range rows {
		blob = append(blob, r...)
	}
	return blob
}

// writeCommon adds the meta, ids, and vecs sections.
func writeCommon(bw *binfmt.Writer, meta binMeta, ids []string, vecs [][]float32) error {
	if err := bw.JSON("meta", meta); err != nil {
		return fmt.Errorf("vecindex: encode snapshot: %w", err)
	}
	bw.Strings("ids", ids)
	bw.Float32s("vecs", flattenVecs(vecs, meta.Dim))
	return nil
}

// readCommon validates the meta, ids, and vecs sections against family and
// returns the decoded IDs plus zero-copy per-vector views of the blob.
func readCommon(fr *binfmt.Reader, family string) (binMeta, []string, []embed.Vector, error) {
	var meta binMeta
	if err := fr.JSON("meta", &meta); err != nil {
		return meta, nil, nil, err
	}
	if meta.Family != family {
		return meta, nil, nil, fmt.Errorf("vecindex: snapshot family %q, want %q", meta.Family, family)
	}
	if meta.Dim <= 0 {
		return meta, nil, nil, fmt.Errorf("vecindex: snapshot has invalid dimension %d", meta.Dim)
	}
	if meta.Count < 0 {
		return meta, nil, nil, fmt.Errorf("vecindex: snapshot has negative count %d", meta.Count)
	}
	idCol, err := fr.Strings("ids")
	if err != nil {
		return meta, nil, nil, err
	}
	if idCol.Len() != meta.Count {
		return meta, nil, nil, fmt.Errorf("vecindex: snapshot id count %d, meta says %d", idCol.Len(), meta.Count)
	}
	blob, err := fr.Float32s("vecs")
	if err != nil {
		return meta, nil, nil, err
	}
	if len(blob) != meta.Count*meta.Dim {
		return meta, nil, nil, fmt.Errorf("vecindex: snapshot vector blob has %d floats, want %d", len(blob), meta.Count*meta.Dim)
	}
	ids := make([]string, meta.Count)
	vecs := make([]embed.Vector, meta.Count)
	seen := make(map[string]struct{}, meta.Count)
	for i := 0; i < meta.Count; i++ {
		ids[i] = idCol.At(i)
		if _, dup := seen[ids[i]]; dup {
			return meta, nil, nil, fmt.Errorf("vecindex: snapshot has duplicate id %q", ids[i])
		}
		seen[ids[i]] = struct{}{}
		vecs[i] = embed.Vector(blob[i*meta.Dim : (i+1)*meta.Dim : (i+1)*meta.Dim])
	}
	return meta, ids, vecs, nil
}

// newLoadedStore builds the mutable store bookkeeping around decoded rows,
// pinning the container so its mapping outlives every view.
func newLoadedStore(fr *binfmt.Reader, ids []string, vecs []embed.Vector) store {
	s := store{
		ids:     ids,
		vecs:    vecs,
		deleted: make([]bool, len(ids)),
		live:    len(ids),
		byID:    make(map[string]int, len(ids)),
		pin:     fr,
	}
	for i, id := range ids {
		s.byID[id] = i
	}
	return s
}

func encodeFlat(bw *binfmt.Writer, s *flatSnapshot) error {
	return writeCommon(bw, binMeta{
		Family: "flat", Metric: s.Metric, Dim: s.Dim, Count: len(s.IDs),
	}, s.IDs, s.Vecs)
}

func decodeFlat(fr *binfmt.Reader) (*Flat, error) {
	meta, ids, vecs, err := readCommon(fr, "flat")
	if err != nil {
		return nil, err
	}
	f := NewFlat(meta.Dim, Metric(meta.Metric))
	f.store = newLoadedStore(fr, ids, vecs)
	return f, nil
}

func encodeIVF(bw *binfmt.Writer, s *ivfSnapshot) error {
	meta := binMeta{
		Family: "ivf", Metric: s.Metric, Dim: s.Dim, Count: len(s.IDs),
		NList: s.NList, NProbe: s.NProbe, Seed: s.Seed,
		Trained: s.Trained, Centroids: len(s.Centroids),
	}
	if err := writeCommon(bw, meta, s.IDs, s.Vecs); err != nil {
		return err
	}
	if s.Trained {
		bw.Float32s("centroids", flattenVecs(s.Centroids, s.Dim))
		bw.Int32s("cells", s.Cells)
	}
	return nil
}

func decodeIVF(fr *binfmt.Reader) (*IVF, error) {
	meta, ids, vecs, err := readCommon(fr, "ivf")
	if err != nil {
		return nil, err
	}
	if meta.NList <= 0 || meta.NProbe <= 0 {
		return nil, fmt.Errorf("vecindex: IVF snapshot has invalid parameters (nlist=%d nprobe=%d)", meta.NList, meta.NProbe)
	}
	ix := NewIVF(meta.Dim, Metric(meta.Metric), meta.NList, meta.NProbe, meta.Seed)
	ix.store = newLoadedStore(fr, ids, vecs)
	if meta.Trained {
		cblob, err := fr.Float32s("centroids")
		if err != nil {
			return nil, err
		}
		if len(cblob) != meta.Centroids*meta.Dim {
			return nil, fmt.Errorf("vecindex: IVF snapshot centroid blob has %d floats, want %d", len(cblob), meta.Centroids*meta.Dim)
		}
		cells, err := fr.Int32s("cells")
		if err != nil {
			return nil, err
		}
		if len(cells) != meta.Count {
			return nil, fmt.Errorf("vecindex: IVF snapshot cell/vector count mismatch (%d vs %d)", len(cells), meta.Count)
		}
		ix.trained = true
		ix.centroids = make([]embed.Vector, meta.Centroids)
		for i := range ix.centroids {
			ix.centroids[i] = embed.Vector(cblob[i*meta.Dim : (i+1)*meta.Dim : (i+1)*meta.Dim])
		}
		ix.cells = make([][]int, meta.Centroids)
		for ord, c := range cells {
			if c < 0 || int(c) >= meta.Centroids {
				return nil, fmt.Errorf("vecindex: IVF snapshot vector %d references unknown cell %d", ord, c)
			}
			ix.cells[c] = append(ix.cells[c], ord)
		}
	}
	return ix, nil
}

func encodeLSH(bw *binfmt.Writer, s *lshSnapshot) error {
	return writeCommon(bw, binMeta{
		Family: "lsh", Metric: int(Cosine), Dim: s.Dim, Count: len(s.IDs),
		NBits: s.NBits, NTables: s.NTables, Seed: s.Seed,
	}, s.IDs, s.Vecs)
}

func decodeLSH(fr *binfmt.Reader) (*LSH, error) {
	meta, ids, vecs, err := readCommon(fr, "lsh")
	if err != nil {
		return nil, err
	}
	if meta.NBits <= 0 || meta.NBits > 64 || meta.NTables <= 0 {
		return nil, fmt.Errorf("vecindex: LSH snapshot has invalid parameters (nbits=%d ntables=%d)", meta.NBits, meta.NTables)
	}
	ix := NewLSH(meta.Dim, meta.NBits, meta.NTables, meta.Seed)
	ix.store = newLoadedStore(fr, ids, vecs)
	// The hyperplane family is a pure function of the parameters; re-hash
	// each vector into identical buckets.
	for ord, v := range ix.vecs {
		for t := 0; t < ix.ntables; t++ {
			sig := ix.signature(t, v)
			ix.tables[t][sig] = append(ix.tables[t][sig], ord)
		}
	}
	return ix, nil
}

func encodeSQ(bw *binfmt.Writer, s *sqSnapshot) error {
	meta := binMeta{
		Family: "sqflat", Metric: s.Metric, Dim: s.Dim, Count: len(s.IDs),
		Lo: float64(s.Lo), Hi: float64(s.Hi), Rerank: s.Rerank,
	}
	if err := writeCommon(bw, meta, s.IDs, s.Vecs); err != nil {
		return err
	}
	bw.Int8s("codes", s.Codes)
	bw.Int32s("sums", s.Sums)
	bw.Int32s("sqsums", s.SqSums)
	bw.Float32s("norms", s.Norms)
	return nil
}

func decodeSQ(fr *binfmt.Reader) (*SQFlat, error) {
	meta, ids, vecs, err := readCommon(fr, "sqflat")
	if err != nil {
		return nil, err
	}
	if math.IsNaN(meta.Lo) || math.IsNaN(meta.Hi) || meta.Hi < meta.Lo {
		return nil, fmt.Errorf("vecindex: SQ snapshot has invalid range [%g, %g]", meta.Lo, meta.Hi)
	}
	codes, err := fr.Int8s("codes")
	if err != nil {
		return nil, err
	}
	sums, err := fr.Int32s("sums")
	if err != nil {
		return nil, err
	}
	sqsums, err := fr.Int32s("sqsums")
	if err != nil {
		return nil, err
	}
	norms, err := fr.Float32s("norms")
	if err != nil {
		return nil, err
	}
	if len(codes) != meta.Count*meta.Dim || len(sums) != meta.Count || len(sqsums) != meta.Count || len(norms) != meta.Count {
		return nil, fmt.Errorf("vecindex: SQ snapshot column lengths disagree (codes=%d sums=%d sqsums=%d norms=%d count=%d)",
			len(codes), len(sums), len(sqsums), len(norms), meta.Count)
	}
	ix := NewSQFlat(meta.Dim, Metric(meta.Metric), meta.Rerank)
	ix.store = newLoadedStore(fr, ids, vecs)
	ix.lo, ix.hi = float32(meta.Lo), float32(meta.Hi)
	ix.ranged = meta.Count > 0
	ix.codes = codes
	ix.sums = sums
	ix.sqsums = sqsums
	ix.norms = norms
	return ix, nil
}
