// Package vecindex implements the semantic-based index of VerifAI's Indexer
// module: similarity search over dense vectors. It stands in for Meta Faiss
// in the paper's architecture and provides Faiss's canonical index types:
// Flat (exact), IVF-Flat (inverted-file over k-means cells), and LSH
// (random-hyperplane signatures).
package vecindex

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"

	"repro/internal/embed"
)

// Metric selects the similarity used for ranking.
type Metric int

const (
	// Cosine ranks by cosine similarity (higher is better).
	Cosine Metric = iota
	// InnerProduct ranks by dot product (higher is better).
	InnerProduct
	// L2 ranks by Euclidean distance (lower is better; Hit.Score is the
	// negated squared distance so that higher Score is always better).
	L2
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case InnerProduct:
		return "inner-product"
	case L2:
		return "l2"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Hit is one search result. Score is oriented so that higher is better
// regardless of metric.
type Hit struct {
	ID    string
	Score float64
}

// Searcher is the query interface shared by all index types.
type Searcher interface {
	// Search returns the top-k nearest vectors to q, best first, ties broken
	// by ascending ID.
	Search(q embed.Vector, k int) []Hit
	// Len returns the number of indexed vectors.
	Len() int
}

// compactThreshold is the minimum tombstone count before an index compacts
// itself. Removal compacts once tombstones both exceed this floor and
// outnumber live entries, so sustained churn (e.g. entity re-indexing under
// live KG ingestion) keeps memory and scan cost within 2× of the live set
// at amortized O(1) per removal.
const compactThreshold = 64

// store is the id/vector bookkeeping shared by all index types: append-only
// arrays with tombstoned removal and threshold-triggered compaction. The
// embedding index owns the lock; every method here assumes it is held.
type store struct {
	ids     []string
	vecs    []embed.Vector
	deleted []bool
	live    int
	byID    map[string]int
	// pin keeps the binfmt container alive when ids/vecs are zero-copy
	// views into a memory mapping (see binary.go); nil for built indexes.
	pin any
}

func newStore() store { return store{byID: make(map[string]int)} }

// addLocked appends v (copied) under id and returns its ordinal. Duplicate
// live IDs are errors; a removed id may be added again under a new ordinal.
func (s *store) addLocked(id string, v embed.Vector) (int, error) {
	if ord, dup := s.byID[id]; dup && !s.deleted[ord] {
		return 0, fmt.Errorf("vecindex: duplicate id %q", id)
	}
	ord := len(s.ids)
	s.byID[id] = ord
	s.ids = append(s.ids, id)
	s.vecs = append(s.vecs, embed.Clone(v))
	s.deleted = append(s.deleted, false)
	s.live++
	return ord, nil
}

// removeLocked tombstones id, reporting whether it was live and whether the
// tombstone count now warrants compaction.
func (s *store) removeLocked(id string) (removed, compactDue bool) {
	ord, ok := s.byID[id]
	if !ok || s.deleted[ord] {
		return false, false
	}
	s.deleted[ord] = true
	s.live--
	dead := len(s.ids) - s.live
	return true, dead > s.live && dead >= compactThreshold
}

// compactLocked rebuilds the arrays without tombstones and returns the
// old→new ordinal remapping (-1 for dropped entries) so the embedding index
// can fix its ordinal references (IVF cells, LSH buckets).
func (s *store) compactLocked() []int {
	remap := make([]int, len(s.ids))
	ids := make([]string, 0, s.live)
	vecs := make([]embed.Vector, 0, s.live)
	byID := make(map[string]int, s.live)
	for i, id := range s.ids {
		if s.deleted[i] {
			remap[i] = -1
			continue
		}
		remap[i] = len(ids)
		byID[id] = len(ids)
		ids = append(ids, id)
		vecs = append(vecs, s.vecs[i])
	}
	s.ids, s.vecs, s.byID = ids, vecs, byID
	s.deleted = make([]bool, len(ids))
	return remap
}

// score computes the metric-oriented score of q against v.
func score(m Metric, q, v embed.Vector) float64 {
	switch m {
	case Cosine:
		return embed.Cosine(q, v)
	case InnerProduct:
		return embed.Dot(q, v)
	case L2:
		return -embed.L2Sq(q, v)
	default:
		panic("vecindex: unknown metric")
	}
}

// Flat is an exact (brute-force) index, the ground-truth baseline the ANN
// indexes are measured against. It is safe for concurrent Add, Remove, and
// Search; removal tombstones the vector (skipped by searches) and the id
// may be re-added afterwards, matching the live-lake ingest pattern.
type Flat struct {
	mu     sync.RWMutex
	metric Metric
	dim    int
	store
}

// NewFlat returns an empty exact index of dimension dim.
func NewFlat(dim int, metric Metric) *Flat {
	if dim <= 0 {
		panic("vecindex: non-positive dimension")
	}
	return &Flat{metric: metric, dim: dim, store: newStore()}
}

// Add indexes v under id. The vector is copied. Duplicate live IDs and
// dimension mismatches are errors; a removed id may be added again.
func (f *Flat) Add(id string, v embed.Vector) error {
	if len(v) != f.dim {
		return fmt.Errorf("vecindex: vector dim %d != index dim %d", len(v), f.dim)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	_, err := f.addLocked(id, v)
	return err
}

// Remove tombstones id's vector, compacting the index once tombstones
// dominate. Removing an unknown or already-removed id is a no-op returning
// false.
func (f *Flat) Remove(id string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	removed, compactDue := f.removeLocked(id)
	if compactDue {
		f.compactLocked()
	}
	return removed
}

// Len returns the number of live indexed vectors.
func (f *Flat) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.live
}

// Search implements Searcher with an exact scan.
func (f *Flat) Search(q embed.Vector, k int) []Hit {
	if k <= 0 {
		return nil
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	h := newTopK(k)
	for i, v := range f.vecs {
		if f.deleted[i] {
			continue
		}
		h.offer(f.ids[i], score(f.metric, q, v))
	}
	return h.results()
}

// topK is a bounded min-heap used by all index types to keep the best k
// hits with deterministic tie-breaking.
type topK struct {
	k     int
	items []Hit
}

func newTopK(k int) *topK { return &topK{k: k, items: make([]Hit, 0, k+1)} }

func (h *topK) Len() int { return len(h.items) }
func (h *topK) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}
func (h *topK) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *topK) Push(x interface{}) { h.items = append(h.items, x.(Hit)) }
func (h *topK) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

func (h *topK) offer(id string, s float64) {
	heap.Push(h, Hit{ID: id, Score: s})
	if h.Len() > h.k {
		heap.Pop(h)
	}
}

func (h *topK) results() []Hit {
	out := append([]Hit(nil), h.items...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}
