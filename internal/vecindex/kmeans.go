package vecindex

import (
	"math"

	"repro/internal/detrand"
	"repro/internal/embed"
)

// kmeans clusters vecs into k centroids using Lloyd's algorithm with
// k-means++ seeding. All randomness comes from the given seed, so the
// clustering is deterministic. Returns the centroids and per-vector
// assignments. k is clamped to len(vecs).
func kmeans(vecs []embed.Vector, k int, seed uint64, maxIter int) ([]embed.Vector, []int) {
	n := len(vecs)
	if n == 0 || k <= 0 {
		return nil, nil
	}
	if k > n {
		k = n
	}
	dim := len(vecs[0])
	r := detrand.New(seed, "kmeans")

	// k-means++ seeding: first centroid uniform, then proportional to
	// squared distance from the nearest chosen centroid.
	centroids := make([]embed.Vector, 0, k)
	centroids = append(centroids, embed.Clone(vecs[r.Intn(n)]))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = embed.L2Sq(vecs[i], centroids[0])
	}
	for len(centroids) < k {
		var sum float64
		for _, d := range d2 {
			sum += d
		}
		var next int
		if sum == 0 {
			next = r.Intn(n)
		} else {
			x := r.Float64() * sum
			for i, d := range d2 {
				x -= d
				if x < 0 {
					next = i
					break
				}
			}
		}
		c := embed.Clone(vecs[next])
		centroids = append(centroids, c)
		for i := range d2 {
			if d := embed.L2Sq(vecs[i], c); d < d2[i] {
				d2[i] = d
			}
		}
	}

	assign := make([]int, n)
	counts := make([]int, k)
	for iter := 0; iter < maxIter; iter++ {
		changed := 0
		for i, v := range vecs {
			best, bestD := 0, math.Inf(1)
			for ci, c := range centroids {
				if d := embed.L2Sq(v, c); d < bestD {
					best, bestD = ci, d
				}
			}
			if assign[i] != best || iter == 0 {
				if iter > 0 {
					changed++
				}
				assign[i] = best
			}
		}
		if iter > 0 && changed == 0 {
			break
		}
		// Recompute centroids.
		for ci := range centroids {
			for d := range centroids[ci] {
				centroids[ci][d] = 0
			}
			counts[ci] = 0
		}
		for i, v := range vecs {
			c := centroids[assign[i]]
			for d := 0; d < dim; d++ {
				c[d] += v[d]
			}
			counts[assign[i]]++
		}
		for ci := range centroids {
			if counts[ci] == 0 {
				// Re-seed empty cluster at the point farthest from its
				// centroid assignment, keeping cells non-degenerate.
				far, farD := 0, -1.0
				for i, v := range vecs {
					if d := embed.L2Sq(v, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[ci], vecs[far])
				continue
			}
			inv := float32(1 / float64(counts[ci]))
			for d := range centroids[ci] {
				centroids[ci][d] *= inv
			}
		}
	}
	// Final assignment against the last centroid update.
	for i, v := range vecs {
		best, bestD := 0, math.Inf(1)
		for ci, c := range centroids {
			if d := embed.L2Sq(v, c); d < bestD {
				best, bestD = ci, d
			}
		}
		assign[i] = best
	}
	return centroids, assign
}
