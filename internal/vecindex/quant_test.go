package vecindex

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/embed"
)

// buildSQ indexes vecs into a fresh SQFlat.
func buildSQ(t *testing.T, vecs []embed.Vector, dim int, metric Metric, rerank int) *SQFlat {
	t.Helper()
	sq := NewSQFlat(dim, metric, rerank)
	for i, v := range vecs {
		if err := sq.Add(fmt.Sprintf("v%03d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	return sq
}

// TestSQFlatMatchesFlatWhenRerankCoversAll pins the exactness property:
// once rerank×k reaches the index size, every vector survives to the exact
// re-rank, so the output must be bit-identical to Flat for every metric.
func TestSQFlatMatchesFlatWhenRerankCoversAll(t *testing.T) {
	const dim, n, k = 16, 50, 5
	vecs := randomVectors(n, dim, 7)
	queries := randomVectors(8, dim, 8)
	for _, metric := range []Metric{Cosine, InnerProduct, L2} {
		flat := NewFlat(dim, metric)
		for i, v := range vecs {
			if err := flat.Add(fmt.Sprintf("v%03d", i), v); err != nil {
				t.Fatal(err)
			}
		}
		sq := buildSQ(t, vecs, dim, metric, n/k+1)
		for qi, q := range queries {
			a, b := flat.Search(q, k), sq.Search(q, k)
			if len(a) != len(b) {
				t.Fatalf("%v query %d: %d vs %d hits", metric, qi, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("%v query %d hit %d: %+v vs %+v", metric, qi, i, a[i], b[i])
				}
			}
		}
	}
}

// TestSQFlatRecall measures recall@10 of the quantized scan with the
// default rerank multiple against the exact flat index — the acceptance
// floor the ablation reports on larger corpora.
func TestSQFlatRecall(t *testing.T) {
	const dim, n, k = 32, 500, 10
	vecs := randomVectors(n, dim, 11)
	flat := NewFlat(dim, Cosine)
	for i, v := range vecs {
		if err := flat.Add(fmt.Sprintf("v%03d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	sq := buildSQ(t, vecs, dim, Cosine, DefaultRerank)

	queries := randomVectors(20, dim, 12)
	var hit, total int
	for _, q := range queries {
		want := map[string]bool{}
		for _, h := range flat.Search(q, k) {
			want[h.ID] = true
		}
		for _, h := range sq.Search(q, k) {
			if want[h.ID] {
				hit++
			}
		}
		total += k
	}
	recall := float64(hit) / float64(total)
	t.Logf("quantized recall@%d = %.3f over %d queries", k, recall, len(queries))
	if recall < 0.95 {
		t.Errorf("recall@%d = %.3f, want >= 0.95", k, recall)
	}
}

func TestSQFlatRequantizeOnRangeExtension(t *testing.T) {
	const dim = 8
	sq := NewSQFlat(dim, InnerProduct, 8)
	flat := NewFlat(dim, InnerProduct)
	// Each batch doubles the component scale, forcing range extensions.
	var id int
	for _, scale := range []float32{0.1, 1, 10} {
		for _, v := range randomVectors(20, dim, uint64(scale*100)) {
			scaled := make(embed.Vector, dim)
			for d := range v {
				scaled[d] = v[d] * scale
			}
			name := fmt.Sprintf("v%03d", id)
			id++
			if err := sq.Add(name, scaled); err != nil {
				t.Fatal(err)
			}
			if err := flat.Add(name, scaled); err != nil {
				t.Fatal(err)
			}
		}
	}
	if sq.Requants() < 2 {
		t.Errorf("Requants = %d, want >= 2 after range extensions", sq.Requants())
	}
	// rerank×k covers the whole index, so results stay exact after every
	// requantization.
	for qi, q := range randomVectors(5, dim, 77) {
		a, b := flat.Search(q, 8), sq.Search(q, 8)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d hits", qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("query %d hit %d: %+v vs %+v", qi, i, a[i], b[i])
			}
		}
	}
}

func TestSQFlatRemoveAndCompact(t *testing.T) {
	const dim = 8
	vecs := randomVectors(200, dim, 21)
	sq := buildSQ(t, vecs, dim, Cosine, 100)
	for i := 0; i < 150; i++ {
		if !sq.Remove(fmt.Sprintf("v%03d", i)) {
			t.Fatalf("Remove(v%03d) = false", i)
		}
	}
	if sq.Remove("v000") {
		t.Error("double Remove = true")
	}
	if sq.Len() != 50 {
		t.Errorf("Len after removals = %d", sq.Len())
	}
	// Compaction must have rebuilt the code columns consistently: results
	// still match an exact index over the survivors.
	flat := NewFlat(dim, Cosine)
	for i := 150; i < 200; i++ {
		if err := flat.Add(fmt.Sprintf("v%03d", i), vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range randomVectors(5, dim, 22) {
		a, b := flat.Search(q, 10), sq.Search(q, 10)
		if len(a) != len(b) {
			t.Fatalf("hit counts differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("hit %d: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
	// Removed IDs can be re-added.
	if err := sq.Add("v000", vecs[0]); err != nil {
		t.Errorf("re-Add after Remove: %v", err)
	}
}

func TestSQFlatErrors(t *testing.T) {
	sq := NewSQFlat(4, Cosine, 0)
	if sq.rerank != DefaultRerank {
		t.Errorf("rerank default = %d", sq.rerank)
	}
	if err := sq.Add("a", embed.Vector{1, 2}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if err := sq.Add("a", embed.Vector{1, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := sq.Add("a", embed.Vector{0, 1, 0, 0}); err == nil {
		t.Error("duplicate id accepted")
	}
	if got := sq.Search(embed.Vector{1, 0, 0, 0}, 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	if got := sq.Search(embed.Vector{1, 0}, 3); got != nil {
		t.Errorf("wrong-dim query returned %v", got)
	}
}

func TestSQFlatSaveLoadRoundtrip(t *testing.T) {
	const dim = 16
	vecs := randomVectors(120, dim, 41)
	sq := buildSQ(t, vecs, dim, Cosine, 6)
	sq.Remove("v007") // tombstones must compact away in the capture

	var buf bytes.Buffer
	if err := sq.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	data := append([]byte(nil), buf.Bytes()...)

	loaded, err := LoadSQ(&buf)
	if err != nil {
		t.Fatalf("LoadSQ: %v", err)
	}
	if loaded.Len() != sq.Len() {
		t.Fatalf("Len drifted: %d vs %d", loaded.Len(), sq.Len())
	}
	queries := randomVectors(8, dim, 42)
	for qi, q := range queries {
		a, b := sq.Search(q, 10), loaded.Search(q, 10)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d hits", qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("query %d hit %d: %+v vs %+v", qi, i, a[i], b[i])
			}
		}
	}

	// The mmap-backed open must serve identically, and keep accepting
	// writes (views are copy-on-grow; requantization never mutates the
	// mapped columns in place).
	path := filepath.Join(t.TempDir(), "sq.idx")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenSQFile(path)
	if err != nil {
		t.Fatalf("OpenSQFile: %v", err)
	}
	for qi, q := range queries {
		a, b := sq.Search(q, 10), mapped.Search(q, 10)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("mapped query %d hit %d: %+v vs %+v", qi, i, a[i], b[i])
			}
		}
	}
	if err := mapped.Add("extra", randomVectors(1, dim, 43)[0]); err != nil {
		t.Fatalf("Add after OpenSQFile: %v", err)
	}
	if !mapped.Remove("v003") {
		t.Error("Remove after OpenSQFile = false")
	}
	big := make(embed.Vector, dim)
	big[0] = 50 // force a requantization over the loaded views
	if err := mapped.Add("huge", big); err != nil {
		t.Fatal(err)
	}
	if mapped.Requants() == 0 {
		t.Error("expected a requantization after out-of-range Add")
	}
}

// TestSQFlatFreezeIsolation pins the copy-on-write contract: a capture
// taken before a requantizing Add must serialize the pre-mutation state.
func TestSQFlatFreezeIsolation(t *testing.T) {
	const dim = 8
	vecs := randomVectors(30, dim, 61)
	sq := buildSQ(t, vecs, dim, Cosine, 10)
	frozen := sq.Freeze()
	wantLen := sq.Len()
	want := sq.Search(vecs[0], 5)

	big := make(embed.Vector, dim)
	big[0] = 100
	if err := sq.Add("outlier", big); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := frozen.Save(&buf); err != nil {
		t.Fatalf("Save frozen: %v", err)
	}
	loaded, err := LoadSQ(&buf)
	if err != nil {
		t.Fatalf("LoadSQ: %v", err)
	}
	if loaded.Len() != wantLen {
		t.Errorf("frozen capture Len = %d, want %d", loaded.Len(), wantLen)
	}
	got := loaded.Search(vecs[0], 5)
	if len(got) != len(want) {
		t.Fatalf("hit counts differ: %v vs %v", got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("hit %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestSQFlatNoLegacyFormat(t *testing.T) {
	sq := NewSQFlat(4, Cosine, 2)
	if err := SaveLegacy(sq.Freeze(), &bytes.Buffer{}); err == nil {
		t.Error("SaveLegacy accepted an SQFlat capture")
	}
}

func TestDotCodesMatchesReference(t *testing.T) {
	ref := func(a, b []int8) int32 {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		var s int32
		for i := 0; i < n; i++ {
			s += int32(a[i]) * int32(b[i])
		}
		return s
	}
	mk := func(n int, seed int) []int8 {
		out := make([]int8, n)
		x := uint32(seed)*2654435761 + 1
		for i := range out {
			x = x*1664525 + 1013904223
			out[i] = int8(x >> 24)
		}
		return out
	}
	for n := 0; n <= 67; n++ {
		a, b := mk(n, n), mk(n, n+1000)
		if got, want := dotCodes(a, b), ref(a, b); got != want {
			t.Fatalf("n=%d: dotCodes = %d, want %d", n, got, want)
		}
	}
	// Mismatched lengths clamp to the shorter row.
	a, b := mk(10, 1), mk(7, 2)
	if got, want := dotCodes(a, b), ref(a, b); got != want {
		t.Errorf("mismatched: %d vs %d", got, want)
	}
}
