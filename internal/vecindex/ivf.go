package vecindex

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/embed"
)

// IVF is an inverted-file index over k-means cells (Faiss IVF-Flat). Vectors
// are accumulated with Add and partitioned by Train; Search probes the
// nprobe cells whose centroids are closest to the query. Until Train is
// called, Search falls back to an exact scan, mirroring Faiss's requirement
// that IVF indexes be trained before efficient search.
type IVF struct {
	mu     sync.RWMutex
	metric Metric
	dim    int
	nlist  int
	nprobe int
	seed   uint64

	ids  []string
	vecs []embed.Vector
	byID map[string]int

	trained   bool
	centroids []embed.Vector
	cells     [][]int // cell -> vector ordinals
}

// NewIVF returns an IVF index with nlist cells probing nprobe cells per
// query. Panics on non-positive parameters.
func NewIVF(dim int, metric Metric, nlist, nprobe int, seed uint64) *IVF {
	if dim <= 0 || nlist <= 0 || nprobe <= 0 {
		panic("vecindex: non-positive IVF parameter")
	}
	return &IVF{
		metric: metric, dim: dim, nlist: nlist, nprobe: nprobe, seed: seed,
		byID: make(map[string]int),
	}
}

// Add stages v under id. Adding after Train is allowed: the vector is
// assigned to its nearest existing cell.
func (ix *IVF) Add(id string, v embed.Vector) error {
	if len(v) != ix.dim {
		return fmt.Errorf("vecindex: vector dim %d != index dim %d", len(v), ix.dim)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, dup := ix.byID[id]; dup {
		return fmt.Errorf("vecindex: duplicate id %q", id)
	}
	ord := len(ix.ids)
	ix.byID[id] = ord
	ix.ids = append(ix.ids, id)
	ix.vecs = append(ix.vecs, embed.Clone(v))
	if ix.trained {
		ci := ix.nearestCell(v)
		ix.cells[ci] = append(ix.cells[ci], ord)
	}
	return nil
}

// Train partitions the staged vectors into nlist cells. It must be called
// after the bulk of Adds for efficient search; calling it again re-trains
// from scratch over all vectors.
func (ix *IVF) Train() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.vecs) == 0 {
		return
	}
	centroids, assign := kmeans(ix.vecs, ix.nlist, ix.seed, 25)
	ix.centroids = centroids
	ix.cells = make([][]int, len(centroids))
	for ord, ci := range assign {
		ix.cells[ci] = append(ix.cells[ci], ord)
	}
	ix.trained = true
}

// Trained reports whether the index has been trained.
func (ix *IVF) Trained() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.trained
}

// Len returns the number of indexed vectors.
func (ix *IVF) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.ids)
}

// nearestCell returns the centroid index closest to v (L2). Caller holds a
// lock and the index is trained.
func (ix *IVF) nearestCell(v embed.Vector) int {
	best, bestD := 0, embed.L2Sq(v, ix.centroids[0])
	for ci := 1; ci < len(ix.centroids); ci++ {
		if d := embed.L2Sq(v, ix.centroids[ci]); d < bestD {
			best, bestD = ci, d
		}
	}
	return best
}

// Search implements Searcher. Untrained indexes scan exactly.
func (ix *IVF) Search(q embed.Vector, k int) []Hit {
	if k <= 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	h := newTopK(k)
	if !ix.trained {
		for i, v := range ix.vecs {
			h.offer(ix.ids[i], score(ix.metric, q, v))
		}
		return h.results()
	}
	// Rank cells by centroid distance, probe the best nprobe.
	type cellDist struct {
		ci int
		d  float64
	}
	dists := make([]cellDist, len(ix.centroids))
	for ci, c := range ix.centroids {
		dists[ci] = cellDist{ci: ci, d: embed.L2Sq(q, c)}
	}
	sort.Slice(dists, func(i, j int) bool {
		if dists[i].d != dists[j].d {
			return dists[i].d < dists[j].d
		}
		return dists[i].ci < dists[j].ci
	})
	probe := ix.nprobe
	if probe > len(dists) {
		probe = len(dists)
	}
	for _, cd := range dists[:probe] {
		for _, ord := range ix.cells[cd.ci] {
			h.offer(ix.ids[ord], score(ix.metric, q, ix.vecs[ord]))
		}
	}
	return h.results()
}
