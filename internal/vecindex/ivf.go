package vecindex

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/embed"
)

// IVF is an inverted-file index over k-means cells (Faiss IVF-Flat). Vectors
// are accumulated with Add and partitioned by Train; Search probes the
// nprobe cells whose centroids are closest to the query. Until Train is
// called, Search falls back to an exact scan, mirroring Faiss's requirement
// that IVF indexes be trained before efficient search.
//
// The index is safe for concurrent Add, Remove, Train, and Search. Vectors
// added after Train are assigned to their nearest trained cell, and removal
// tombstones the vector (skipped at probe time) so online ingestion never
// forces a retrain; retraining remains available to rebalance cells after
// heavy churn.
type IVF struct {
	mu     sync.RWMutex
	metric Metric
	dim    int
	nlist  int
	nprobe int
	seed   uint64

	store

	trained   bool
	centroids []embed.Vector
	cells     [][]int // cell -> vector ordinals
}

// NewIVF returns an IVF index with nlist cells probing nprobe cells per
// query. Panics on non-positive parameters.
func NewIVF(dim int, metric Metric, nlist, nprobe int, seed uint64) *IVF {
	if dim <= 0 || nlist <= 0 || nprobe <= 0 {
		panic("vecindex: non-positive IVF parameter")
	}
	return &IVF{
		metric: metric, dim: dim, nlist: nlist, nprobe: nprobe, seed: seed,
		store: newStore(),
	}
}

// Add stages v under id. Adding after Train is allowed: the vector is
// assigned to its nearest existing cell. Duplicate live IDs are errors; a
// removed id may be added again.
func (ix *IVF) Add(id string, v embed.Vector) error {
	if len(v) != ix.dim {
		return fmt.Errorf("vecindex: vector dim %d != index dim %d", len(v), ix.dim)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ord, err := ix.addLocked(id, v)
	if err != nil {
		return err
	}
	if ix.trained {
		ci := ix.nearestCell(v)
		ix.cells[ci] = append(ix.cells[ci], ord)
	}
	return nil
}

// Remove tombstones id's vector. Removing an unknown or already-removed id
// is a no-op returning false. The ordinal stays in its cell and is skipped
// at probe time until tombstones dominate, at which point the index
// compacts (cell lists are remapped in place; centroids are untouched, so
// no retrain is needed).
func (ix *IVF) Remove(id string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	removed, compactDue := ix.removeLocked(id)
	if compactDue {
		remap := ix.compactLocked()
		for ci, cell := range ix.cells {
			kept := cell[:0]
			for _, ord := range cell {
				if no := remap[ord]; no >= 0 {
					kept = append(kept, no)
				}
			}
			ix.cells[ci] = kept
		}
	}
	return removed
}

// Train partitions the live vectors into nlist cells. It must be called
// after the bulk of Adds for efficient search; calling it again re-trains
// from scratch over all live vectors (rebalancing cells skewed by
// post-train Adds and dropping tombstones from the cell lists).
func (ix *IVF) Train() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.live == 0 {
		return
	}
	liveVecs := make([]embed.Vector, 0, ix.live)
	liveOrds := make([]int, 0, ix.live)
	for ord, v := range ix.vecs {
		if ix.deleted[ord] {
			continue
		}
		liveVecs = append(liveVecs, v)
		liveOrds = append(liveOrds, ord)
	}
	centroids, assign := kmeans(liveVecs, ix.nlist, ix.seed, 25)
	ix.centroids = centroids
	ix.cells = make([][]int, len(centroids))
	for i, ci := range assign {
		ix.cells[ci] = append(ix.cells[ci], liveOrds[i])
	}
	ix.trained = true
}

// Trained reports whether the index has been trained.
func (ix *IVF) Trained() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.trained
}

// Len returns the number of live indexed vectors.
func (ix *IVF) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.live
}

// nearestCell returns the centroid index closest to v (L2). Caller holds a
// lock and the index is trained.
func (ix *IVF) nearestCell(v embed.Vector) int {
	best, bestD := 0, embed.L2Sq(v, ix.centroids[0])
	for ci := 1; ci < len(ix.centroids); ci++ {
		if d := embed.L2Sq(v, ix.centroids[ci]); d < bestD {
			best, bestD = ci, d
		}
	}
	return best
}

// Search implements Searcher. Untrained indexes scan exactly.
func (ix *IVF) Search(q embed.Vector, k int) []Hit {
	if k <= 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	h := newTopK(k)
	if !ix.trained {
		for i, v := range ix.vecs {
			if ix.deleted[i] {
				continue
			}
			h.offer(ix.ids[i], score(ix.metric, q, v))
		}
		return h.results()
	}
	// Rank cells by centroid distance, probe the best nprobe.
	type cellDist struct {
		ci int
		d  float64
	}
	dists := make([]cellDist, len(ix.centroids))
	for ci, c := range ix.centroids {
		dists[ci] = cellDist{ci: ci, d: embed.L2Sq(q, c)}
	}
	sort.Slice(dists, func(i, j int) bool {
		if dists[i].d != dists[j].d {
			return dists[i].d < dists[j].d
		}
		return dists[i].ci < dists[j].ci
	})
	probe := ix.nprobe
	if probe > len(dists) {
		probe = len(dists)
	}
	for _, cd := range dists[:probe] {
		for _, ord := range ix.cells[cd.ci] {
			if ix.deleted[ord] {
				continue
			}
			h.offer(ix.ids[ord], score(ix.metric, q, ix.vecs[ord]))
		}
	}
	return h.results()
}
