package vecindex

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/detrand"
	"repro/internal/embed"
)

// randomVectors returns n deterministic unit vectors of dimension dim.
func randomVectors(n, dim int, seed uint64) []embed.Vector {
	r := detrand.New(seed, "vectors")
	out := make([]embed.Vector, n)
	for i := range out {
		v := make(embed.Vector, dim)
		for d := range v {
			v[d] = float32(r.NormFloat64())
		}
		embed.Normalize(v)
		out[i] = v
	}
	return out
}

func TestFlatExactSearch(t *testing.T) {
	vecs := randomVectors(200, 16, 1)
	ix := NewFlat(16, Cosine)
	for i, v := range vecs {
		if err := ix.Add(fmt.Sprintf("v%03d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 200 {
		t.Fatalf("Len = %d", ix.Len())
	}
	q := vecs[42]
	hits := ix.Search(q, 5)
	if len(hits) != 5 {
		t.Fatalf("hits = %d", len(hits))
	}
	if hits[0].ID != "v042" {
		t.Errorf("nearest to itself = %s", hits[0].ID)
	}
	if math.Abs(hits[0].Score-1) > 1e-5 {
		t.Errorf("self-cosine = %v", hits[0].Score)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Error("hits not sorted")
		}
	}
}

func TestFlatMetrics(t *testing.T) {
	a := embed.Vector{1, 0}
	b := embed.Vector{0, 1}
	c := embed.Vector{2, 0}
	for _, metric := range []Metric{Cosine, InnerProduct, L2} {
		ix := NewFlat(2, metric)
		for id, v := range map[string]embed.Vector{"a": a, "b": b, "c": c} {
			if err := ix.Add(id, v); err != nil {
				t.Fatal(err)
			}
		}
		hits := ix.Search(embed.Vector{1, 0}, 3)
		if len(hits) != 3 {
			t.Fatalf("%v: hits = %d", metric, len(hits))
		}
		switch metric {
		case Cosine:
			// a and c tie at cosine 1; ascending-ID tie-break puts a first.
			if hits[0].ID != "a" || hits[1].ID != "c" {
				t.Errorf("cosine order = %v", hits)
			}
		case InnerProduct:
			if hits[0].ID != "c" { // dot 2 beats dot 1
				t.Errorf("inner-product order = %v", hits)
			}
		case L2:
			if hits[0].ID != "a" || hits[0].Score != 0 {
				t.Errorf("l2 order = %v", hits)
			}
		}
	}
}

func TestFlatErrors(t *testing.T) {
	ix := NewFlat(4, Cosine)
	if err := ix.Add("a", embed.Vector{1, 2}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := ix.Add("a", embed.Vector{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("a", embed.Vector{1, 2, 3, 4}); err == nil {
		t.Error("duplicate accepted")
	}
	if got := ix.Search(embed.Vector{1, 0, 0, 0}, 0); got != nil {
		t.Error("k=0 returned hits")
	}
}

func TestFlatAddCopiesVector(t *testing.T) {
	ix := NewFlat(2, Cosine)
	v := embed.Vector{1, 0}
	if err := ix.Add("a", v); err != nil {
		t.Fatal(err)
	}
	v[0] = 0
	v[1] = 1
	hits := ix.Search(embed.Vector{1, 0}, 1)
	if math.Abs(hits[0].Score-1) > 1e-6 {
		t.Error("index shares caller's vector storage")
	}
}

func TestIVFMatchesFlatRecall(t *testing.T) {
	const n, dim, k = 500, 16, 10
	vecs := randomVectors(n, dim, 2)
	flat := NewFlat(dim, Cosine)
	ivf := NewIVF(dim, Cosine, 16, 6, 3)
	for i, v := range vecs {
		id := fmt.Sprintf("v%03d", i)
		if err := flat.Add(id, v); err != nil {
			t.Fatal(err)
		}
		if err := ivf.Add(id, v); err != nil {
			t.Fatal(err)
		}
	}
	ivf.Train()
	if !ivf.Trained() {
		t.Fatal("IVF not trained")
	}
	queries := randomVectors(30, dim, 99)
	var overlap, total int
	for _, q := range queries {
		exact := flat.Search(q, k)
		approx := ivf.Search(q, k)
		got := make(map[string]bool, len(approx))
		for _, h := range approx {
			got[h.ID] = true
		}
		for _, h := range exact {
			total++
			if got[h.ID] {
				overlap++
			}
		}
	}
	recall := float64(overlap) / float64(total)
	if recall < 0.6 {
		t.Errorf("IVF recall vs flat = %v, want >= 0.6", recall)
	}
}

func TestIVFUntrainedFallsBackToExact(t *testing.T) {
	vecs := randomVectors(50, 8, 3)
	ivf := NewIVF(8, Cosine, 4, 1, 1)
	for i, v := range vecs {
		if err := ivf.Add(fmt.Sprintf("v%02d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	hits := ivf.Search(vecs[7], 1)
	if len(hits) != 1 || hits[0].ID != "v07" {
		t.Errorf("untrained IVF search = %v", hits)
	}
}

func TestIVFAddAfterTrain(t *testing.T) {
	vecs := randomVectors(100, 8, 4)
	ivf := NewIVF(8, Cosine, 8, 8, 1) // probe all cells: exact
	for i, v := range vecs {
		if err := ivf.Add(fmt.Sprintf("v%03d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	ivf.Train()
	extra := randomVectors(1, 8, 777)[0]
	if err := ivf.Add("late", extra); err != nil {
		t.Fatal(err)
	}
	hits := ivf.Search(extra, 1)
	if len(hits) != 1 || hits[0].ID != "late" {
		t.Errorf("late-added vector not found: %v", hits)
	}
}

func TestIVFParamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewIVF with bad params did not panic")
		}
	}()
	NewIVF(8, Cosine, 0, 1, 1)
}

func TestLSHReturnsTrueNeighbors(t *testing.T) {
	const n, dim = 300, 32
	vecs := randomVectors(n, dim, 5)
	lsh := NewLSH(dim, 10, 8, 6)
	for i, v := range vecs {
		if err := lsh.Add(fmt.Sprintf("v%03d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	if lsh.Len() != n {
		t.Fatalf("Len = %d", lsh.Len())
	}
	// Identical query must find itself (same signature in every table).
	found := 0
	for i := 0; i < 50; i++ {
		hits := lsh.Search(vecs[i], 3)
		for _, h := range hits {
			if h.ID == fmt.Sprintf("v%03d", i) {
				found++
				break
			}
		}
	}
	if found < 50 {
		t.Errorf("LSH self-recall = %d/50", found)
	}
}

func TestLSHNearbyQueries(t *testing.T) {
	const dim = 32
	vecs := randomVectors(100, dim, 7)
	lsh := NewLSH(dim, 8, 12, 8)
	for i, v := range vecs {
		if err := lsh.Add(fmt.Sprintf("v%03d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	// A small perturbation of an indexed vector should usually still find
	// the original.
	r := detrand.New(11, "perturb")
	found := 0
	for i := 0; i < 40; i++ {
		q := embed.Clone(vecs[i])
		for d := range q {
			q[d] += float32(0.05 * r.NormFloat64())
		}
		embed.Normalize(q)
		for _, h := range lsh.Search(q, 5) {
			if h.ID == fmt.Sprintf("v%03d", i) {
				found++
				break
			}
		}
	}
	if found < 30 {
		t.Errorf("LSH perturbed recall = %d/40", found)
	}
}

func TestLSHParamPanics(t *testing.T) {
	for _, params := range [][3]int{{0, 8, 2}, {8, 0, 2}, {8, 65, 2}, {8, 8, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLSH(%v) did not panic", params)
				}
			}()
			NewLSH(params[0], params[1], params[2], 1)
		}()
	}
}

func TestKMeansAssignments(t *testing.T) {
	// Two well-separated clusters must be recovered.
	r := detrand.New(13, "clusters")
	var vecs []embed.Vector
	for i := 0; i < 50; i++ {
		vecs = append(vecs, embed.Vector{float32(1 + 0.01*r.NormFloat64()), float32(0.01 * r.NormFloat64())})
	}
	for i := 0; i < 50; i++ {
		vecs = append(vecs, embed.Vector{float32(-1 + 0.01*r.NormFloat64()), float32(0.01 * r.NormFloat64())})
	}
	centroids, assign := kmeans(vecs, 2, 1, 25)
	if len(centroids) != 2 || len(assign) != 100 {
		t.Fatalf("kmeans shapes: %d centroids, %d assigns", len(centroids), len(assign))
	}
	// All of the first 50 share a cluster; all of the last 50 share the other.
	c0 := assign[0]
	for i := 1; i < 50; i++ {
		if assign[i] != c0 {
			t.Fatalf("cluster 0 split at %d", i)
		}
	}
	c1 := assign[50]
	if c1 == c0 {
		t.Fatal("clusters merged")
	}
	for i := 51; i < 100; i++ {
		if assign[i] != c1 {
			t.Fatalf("cluster 1 split at %d", i)
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if c, a := kmeans(nil, 3, 1, 5); c != nil || a != nil {
		t.Error("kmeans(nil) returned data")
	}
	vecs := randomVectors(3, 4, 1)
	c, a := kmeans(vecs, 10, 1, 5) // k > n clamps
	if len(c) != 3 || len(a) != 3 {
		t.Errorf("kmeans clamp: %d centroids", len(c))
	}
}

func TestMetricString(t *testing.T) {
	if Cosine.String() != "cosine" || L2.String() != "l2" || InnerProduct.String() != "inner-product" {
		t.Error("Metric.String wrong")
	}
	if Metric(99).String() == "" {
		t.Error("unknown metric String empty")
	}
}
