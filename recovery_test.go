package verifai

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

// copyTree copies a data directory, producing the crash image recovery
// runs on: the original system's goroutines and open files can't help a
// copy, exactly like a killed process's on-disk state.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if info.IsDir() {
			return os.MkdirAll(filepath.Join(dst, rel), info.Mode())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, info.Mode())
	})
	if err != nil {
		t.Fatal(err)
	}
}

// durableOpts is ExactOptions plus an always-fsync WAL, so every
// acknowledged write is durable the moment AddX returns — the posture the
// kill tests rely on.
func durableOpts(seed uint64) OpenOptions {
	return OpenOptions{Options: ExactOptions(seed), Sync: "always"}
}

// TestDurableKillRecovery is the acceptance case: a durable system killed
// without a checkpoint recovers every acknowledged write — version,
// catalog, and retrievability — from the WAL alone.
func TestDurableKillRecovery(t *testing.T) {
	dir := t.TempDir()
	sys, err := Open(filepath.Join(dir, "data"), durableOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Pipeline().Lake().AddSource(Source{ID: "cases", Name: "paper cases", TrustPrior: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddTable(workload.USOpen1954Table()); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddTable(workload.USOpen1959Table()); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocument(workload.MeaganGoodDoc()); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddTriple(Triple{Subject: "tommy bolt", Predicate: "champion of", Object: "1958 u.s. open", SourceID: "cases"}); err != nil {
		t.Fatal(err)
	}
	wantVersion := sys.LakeVersion()
	if wantVersion == 0 {
		t.Fatal("no versions committed")
	}

	// Kill: no Checkpoint, no Close — recover from a copy of the on-disk
	// state (sync=always means every acknowledged write is down there).
	crash := filepath.Join(dir, "crash")
	copyTree(t, filepath.Join(dir, "data"), crash)

	recovered, err := Open(crash, durableOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if v := recovered.LakeVersion(); v != wantVersion {
		t.Fatalf("recovered LakeVersion = %d, want %d", v, wantVersion)
	}
	ds, ok := recovered.Durability()
	if !ok {
		t.Fatal("recovered system reports no durability")
	}
	if ds.ReplayedRecords == 0 {
		t.Error("recovery replayed no WAL records")
	}

	// The recovered indexes serve the paper's Figure 4 claim end to end.
	report, err := recovered.VerifyClaim("rec-golf", workload.GolfClaim())
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != Refuted {
		t.Errorf("recovered verdict = %v, want Refuted", report.Verdict)
	}

	// And keep accepting writes at the right version.
	if err := recovered.AddTable(workload.OhioDistrictsTable()); err != nil {
		t.Fatal(err)
	}
	if v := recovered.LakeVersion(); v != wantVersion+1 {
		t.Errorf("post-recovery version = %d, want %d", v, wantVersion+1)
	}
}

// TestDurableCheckpointRecovery checkpoints, keeps writing, kills, and
// recovers: the state comes from checkpoint + WAL tail, and the index
// snapshot is actually used (same retrieval results either way).
func TestDurableCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	sys, err := Open(data, durableOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Pipeline().Lake().AddSource(Source{ID: "cases", Name: "paper cases", TrustPrior: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddTable(workload.USOpen1954Table()); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddTable(workload.USOpen1959Table()); err != nil {
		t.Fatal(err)
	}
	ckptV, err := sys.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ckptV != sys.LakeVersion() {
		t.Fatalf("checkpoint version %d != lake version %d", ckptV, sys.LakeVersion())
	}
	// Post-checkpoint tail.
	if err := sys.AddDocument(workload.MeaganGoodDoc()); err != nil {
		t.Fatal(err)
	}
	want := sys.LakeVersion()

	crash := filepath.Join(dir, "crash")
	copyTree(t, data, crash)
	recovered, err := Open(crash, durableOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if v := recovered.LakeVersion(); v != want {
		t.Fatalf("recovered version = %d, want %d", v, want)
	}
	ds, _ := recovered.Durability()
	if ds.CheckpointVersion != ckptV {
		t.Errorf("recovered checkpoint version = %d, want %d", ds.CheckpointVersion, ckptV)
	}
	if ds.ReplayedRecords != 1 {
		t.Errorf("replayed %d records, want 1 (just the post-checkpoint doc)", ds.ReplayedRecords)
	}
	report, err := recovered.VerifyClaim("rec-golf", workload.GolfClaim())
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != Refuted {
		t.Errorf("recovered verdict = %v, want Refuted", report.Verdict)
	}
	// The post-checkpoint document (WAL tail) is retrievable too.
	got := recovered.Retrieve(NewClaimObject("q", workload.StompTheYardClaim()), 5, KindText)
	if len(got) == 0 {
		t.Error("post-checkpoint document not retrievable after recovery")
	}
}

// TestDurableTornTailRecovery truncates the WAL mid-record (a crash in the
// middle of an append) and checks recovery drops exactly the torn,
// unacknowledged record and keeps everything before it.
func TestDurableTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	sys, err := Open(data, durableOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		if err := sys.AddDocument(&Document{ID: fmt.Sprintf("doc%02d", i), Title: "t", Text: fmt.Sprintf("body %d", i)}); err != nil {
			t.Fatal(err)
		}
	}

	crash := filepath.Join(dir, "crash")
	copyTree(t, data, crash)
	segs, err := filepath.Glob(filepath.Join(crash, "wal", "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments: %v (%d)", err, len(segs))
	}
	seg := segs[len(segs)-1]
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-9); err != nil {
		t.Fatal(err)
	}

	recovered, err := Open(crash, durableOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if v := recovered.LakeVersion(); v != n-1 {
		t.Fatalf("recovered version = %d, want %d (torn final record dropped)", v, n-1)
	}
	if _, ok := recovered.Pipeline().Lake().Document(fmt.Sprintf("doc%02d", n-1)); ok {
		t.Error("torn record's document resurfaced")
	}
	if _, ok := recovered.Pipeline().Lake().Document(fmt.Sprintf("doc%02d", n-2)); !ok {
		t.Error("intact record lost")
	}
	ds, _ := recovered.Durability()
	if ds.WALTornBytes == 0 {
		t.Error("WALTornBytes = 0, want > 0")
	}
}

// TestCheckpointDuringIngestRecovery overlaps System.Checkpoint with a
// concurrent ingest burst — the two-phase protocol's whole point — then
// kills and recovers. Whatever the interleaving, recovery must see every
// acknowledged write: the checkpoint (pinned at its fork version, index
// snapshot included) plus the WAL tail replayed through the indexer.
func TestCheckpointDuringIngestRecovery(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	sys, err := Open(data, durableOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddTable(workload.USOpen1954Table()); err != nil {
		t.Fatal(err)
	}

	const burst = 30
	ingested := make(chan error, 1)
	go func() {
		for i := 0; i < burst; i++ {
			if err := sys.AddDocument(&Document{
				ID:   fmt.Sprintf("burst%03d", i),
				Text: fmt.Sprintf("burst document %d ingested while a checkpoint writes", i),
			}); err != nil {
				ingested <- err
				return
			}
		}
		ingested <- nil
	}()
	ckptV, err := sys.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-ingested; err != nil {
		t.Fatalf("ingest during checkpoint: %v", err)
	}
	want := sys.LakeVersion()
	if want != burst+1 {
		t.Fatalf("final version = %d, want %d", want, burst+1)
	}
	if ckptV > want {
		t.Fatalf("checkpoint version %d beyond lake version %d", ckptV, want)
	}

	// Kill and recover from a crash image.
	crash := filepath.Join(dir, "crash")
	copyTree(t, data, crash)
	recovered, err := Open(crash, durableOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if v := recovered.LakeVersion(); v != want {
		t.Fatalf("recovered version = %d, want %d", v, want)
	}
	ds, _ := recovered.Durability()
	if ds.CheckpointVersion != ckptV {
		t.Errorf("recovered checkpoint version = %d, want %d", ds.CheckpointVersion, ckptV)
	}
	if got := uint64(ds.ReplayedRecords); got != want-ckptV {
		t.Errorf("replayed %d records, want %d (the post-fork tail)", got, want-ckptV)
	}
	// Every burst document — whether it landed in the checkpoint or the
	// tail — is present and retrievable through the recovered indexes.
	for i := 0; i < burst; i++ {
		id := fmt.Sprintf("burst%03d", i)
		if _, ok := recovered.Pipeline().Lake().Document(id); !ok {
			t.Fatalf("recovered lake lost %s", id)
		}
	}
	got := recovered.Retrieve(NewClaimObject("q", workload.GolfClaim()), 5, KindTable)
	if len(got) == 0 {
		t.Error("recovered table index returned nothing")
	}
}

// TestOpenLockedDataDir checks the cross-process lock at the public API:
// a second Open of a live data dir fails fast with ErrDataDirLocked.
func TestOpenLockedDataDir(t *testing.T) {
	data := filepath.Join(t.TempDir(), "data")
	sys, err := Open(data, durableOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(data, durableOpts(1)); !errors.Is(err, ErrDataDirLocked) {
		t.Fatalf("second Open error = %v, want ErrDataDirLocked", err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	sys2, err := Open(data, durableOpts(1))
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	defer sys2.Close()
}

// TestOpenValidation covers the error surfaces of the durable API.
func TestOpenValidation(t *testing.T) {
	if _, err := Open(t.TempDir(), OpenOptions{Options: ExactOptions(1), Sync: "bogus"}); err == nil {
		t.Error("bogus sync policy accepted")
	}
	lake := NewLake()
	defer lake.Close()
	sys, err := NewSystem(lake, ExactOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Checkpoint(); err == nil {
		t.Error("Checkpoint on an in-memory system succeeded")
	}
	if _, ok := sys.Durability(); ok {
		t.Error("in-memory system reports durability")
	}
}

// TestBinarySnapshotRecoverySmoke is the recovery smoke CI's race job runs:
// checkpoint a quantized durable system, confirm the checkpointed index
// shards on disk are binfmt containers (magic "VAIB"), then recover from a
// copied tree and check the snapshot alone — zero WAL replay — reproduces
// the live system's retrieval.
func TestBinarySnapshotRecoverySmoke(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	opts := durableOpts(1)
	opts.Indexer.Quantize = true
	opts.Indexer.RerankMultiple = 8
	sys, err := Open(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.AddTable(workload.USOpen1954Table()); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddTable(workload.USOpen1959Table()); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocument(workload.MeaganGoodDoc()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	q := NewClaimObject("q", workload.GolfClaim())
	want := sys.Retrieve(q, 5, KindTable)
	if len(want) == 0 {
		t.Fatal("no live retrieval hits")
	}

	shards, err := filepath.Glob(filepath.Join(data, "checkpoint", "indexes", "*.idx"))
	if err != nil || len(shards) == 0 {
		t.Fatalf("no checkpointed index shards: %v (%d)", err, len(shards))
	}
	for _, p := range shards {
		head, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(head) < 4 || string(head[:4]) != "VAIB" {
			t.Errorf("%s: not a binfmt container (head %q)", filepath.Base(p), head[:min(4, len(head))])
		}
	}

	crash := filepath.Join(dir, "crash")
	copyTree(t, data, crash)
	recovered, err := Open(crash, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	ds, _ := recovered.Durability()
	if ds.ReplayedRecords != 0 {
		t.Errorf("replayed %d WAL records, want 0 (checkpoint covers everything)", ds.ReplayedRecords)
	}
	got := recovered.Retrieve(q, 5, KindTable)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("recovered retrieval = %v, want %v", got, want)
	}
}
