package verifai

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// TestPinnedVerdictReproducible is the time-travel reproducibility
// property: pin a snapshot, verify a claim against it, then churn the
// lake with a thousand mixed writes and re-weight the claim's source —
// and the pinned verdict must come back byte-identical, first from the
// result cache (the pin is part of the key, so the entry survives every
// head invalidation) and again when recomputed from the frozen shards.
func TestPinnedVerdictReproducible(t *testing.T) {
	sys, err := NewSystem(caseLake(t), noiseFreeOptions(42))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	claim := "In 1954 u.s. open (golf), the cash prize for tommy bolt, fred haas, and ben hogan was 960 in total."
	// The case tables carry SourceID "paper-cases"; weight it explicitly so
	// the pin must capture a live trust override, not just a lake prior.
	sys.SetSourceTrust("paper-cases", 0.9)

	pin, err := sys.PinSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if pin != sys.LakeVersion() {
		t.Fatalf("pinned version %d, want lake head %d", pin, sys.LakeVersion())
	}

	// Baseline pinned read: computed from the frozen shards, cached under
	// the pin, stamped with it.
	rep0, err := sys.VerifyClaimTextAsOfCtx(ctx, "repro", claim, pin)
	if err != nil {
		t.Fatal(err)
	}
	if rep0.AsOfVersion != pin {
		t.Fatalf("report AsOfVersion = %d, want %d", rep0.AsOfVersion, pin)
	}
	if rep0.Verdict != Refuted {
		t.Fatalf("pinned verdict = %v, want Refuted", rep0.Verdict)
	}
	for _, ev := range rep0.Evidence {
		if ev.SourceTrust != 0.9 {
			t.Fatalf("pinned evidence trust = %v, want the pin-time override 0.9", ev.SourceTrust)
		}
	}

	// Churn: a thousand mixed writes, several of them deliberately about
	// the same tournament, plus a trust collapse for the claim's source.
	for i := 0; i < 1000; i++ {
		switch i % 3 {
		case 0:
			if err := sys.AddDocument(&Document{
				ID: fmt.Sprintf("churn-doc-%04d", i), Title: "churn", SourceID: "paper-cases",
				Text: fmt.Sprintf("In 1954 u.s. open (golf) retrospective %d, tommy bolt's cash prize was 960.", i),
			}); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := sys.AddTriple(Triple{
				Subject: fmt.Sprintf("churn-entity-%04d", i), Predicate: "cash prize",
				Object: "960", SourceID: "paper-cases",
			}); err != nil {
				t.Fatal(err)
			}
		default:
			tbl := NewTable(fmt.Sprintf("churn-table-%04d", i), "1954 u.s. open (golf) revised", []string{"player", "cash prize"})
			tbl.SourceID = "paper-cases"
			tbl.MustAppendRow("tommy bolt", "320")
			if err := sys.AddTable(tbl); err != nil {
				t.Fatal(err)
			}
		}
	}
	sys.SetSourceTrust("paper-cases", 0.05)

	// Head moved: a fresh head read sees the re-weighted trust.
	head, err := sys.VerifyClaimTextCtx(ctx, "head-after-churn", claim)
	if err != nil {
		t.Fatal(err)
	}
	if head.AsOfVersion != 0 {
		t.Fatalf("head report AsOfVersion = %d, want 0", head.AsOfVersion)
	}
	for _, ev := range head.Evidence {
		if ev.SourceTrust != 0.05 {
			t.Fatalf("head evidence trust = %v, want the live override 0.05", ev.SourceTrust)
		}
	}

	// Same request at the same pin: identical report, served by the result
	// cache — the pinned entry must survive 1000 invalidating writes.
	hitsBefore := sys.Stats().ResultCacheHits
	rep1, err := sys.VerifyClaimTextAsOfCtx(ctx, "repro", claim, pin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep0, rep1) {
		t.Fatalf("cached pinned report drifted:\n  first  %+v\n  second %+v", rep0, rep1)
	}
	if hits := sys.Stats().ResultCacheHits; hits != hitsBefore+1 {
		t.Fatalf("ResultCacheHits = %d after pinned re-verify, want %d (cache must serve the pinned entry)", hits, hitsBefore+1)
	}

	// New request ID at the same pin: a cache miss, recomputed end-to-end
	// from the frozen shards — still the same verdict, evidence, and
	// pin-time trust, differing only in request identity and lineage seq.
	rep2, err := sys.VerifyClaimTextAsOfCtx(ctx, "repro-recompute", claim, pin)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rep0, rep2
	a.Object.ID, b.Object.ID = "", ""
	a.ProvenanceSeq, b.ProvenanceSeq = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("recomputed pinned report drifted:\n  cached     %+v\n  recomputed %+v", a, b)
	}
}
