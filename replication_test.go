package verifai

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/workload"
)

// newLeader opens a durable leader and serves its change feed over HTTP —
// the wiring `verifai serve -data-dir` uses.
func newLeader(t testing.TB, dir string) (*System, *httptest.Server) {
	return newLeaderFormat(t, dir, "")
}

// newLeaderFormat is newLeader with an explicit -wal-format, for the
// cross-format upgrade-path cases (a legacy JSON-log leader feeding a
// binary-default follower).
func newLeaderFormat(t testing.TB, dir, walFormat string) (*System, *httptest.Server) {
	t.Helper()
	sys, err := Open(dir, OpenOptions{Options: ExactOptions(1), Sync: "none", WALFormat: walFormat})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	wlog, floor, ckpt, format, ok := sys.ChangeFeed()
	if !ok {
		t.Fatal("durable leader reports no change feed")
	}
	ts := httptest.NewServer(server.New(sys.Pipeline(), server.WithChangeFeed(server.ChangeFeedConfig{
		Log: wlog, Floor: floor, CheckpointTar: ckpt, Format: format,
	})))
	t.Cleanup(ts.Close)
	return sys, ts
}

// waitReplicated blocks until the follower has applied every mutation
// through version v.
func waitReplicated(t testing.TB, sys *System, v uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sys.Pipeline().WaitFresh(ctx, v); err != nil {
		st, _ := sys.Replication()
		t.Fatalf("follower did not reach version %d: %v (replication: %+v)", v, err, st)
	}
}

// TestReplicationEndToEnd is the acceptance case: a follower bootstrapped
// from the leader's checkpoint converges over the change feed, serves the
// identical verdict for a claim whose evidence was ingested after
// bootstrap, enforces read-only + read-your-writes over HTTP, and resumes
// cleanly from its durable cursor after a restart.
func TestReplicationEndToEnd(t *testing.T) {
	dir := t.TempDir()
	leader, leaderSrv := newLeader(t, filepath.Join(dir, "leader"))
	if err := leader.Pipeline().Lake().AddSource(Source{ID: workload.CaseSource, Name: "cases", TrustPrior: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := leader.AddTable(workload.USOpen1954Table()); err != nil {
		t.Fatal(err)
	}
	if err := leader.AddTable(workload.USOpen1959Table()); err != nil {
		t.Fatal(err)
	}
	ckptVersion, err := leader.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Bootstrap: an empty follower pulls the checkpoint, not the full WAL.
	fdir := filepath.Join(dir, "follower")
	follower, err := OpenFollower(fdir, leaderSrv.URL, OpenOptions{Options: ExactOptions(1), Sync: "none"})
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			follower.Close()
		}
	}()
	if ds, ok := follower.Durability(); !ok || ds.CheckpointVersion != ckptVersion {
		t.Fatalf("follower checkpoint version = %+v, want bootstrap at %d", ds, ckptVersion)
	}

	// Evidence ingested after bootstrap arrives over the live stream.
	if err := leader.AddTable(workload.OhioDistrictsTable()); err != nil {
		t.Fatal(err)
	}
	v := leader.LakeVersion()
	waitReplicated(t, follower, v)

	// Identical verdict on both roles for the post-bootstrap evidence
	// (Figure 1's wrongly imputed incumbent).
	ohio := workload.OhioDistrictsTable()
	tp, _ := ohio.TupleAt(2)
	wrong := tp.WithValue("incumbent", "dave hobson")
	lrep, err := leader.VerifyImputedTuple("e2e-fig1", wrong, "incumbent")
	if err != nil {
		t.Fatal(err)
	}
	frep, err := follower.VerifyImputedTuple("e2e-fig1", wrong, "incumbent")
	if err != nil {
		t.Fatal(err)
	}
	if lrep.Verdict != frep.Verdict || frep.Verdict != Refuted {
		t.Fatalf("leader verdict %v, follower verdict %v, want both Refuted", lrep.Verdict, frep.Verdict)
	}

	// Local writes on the follower are rejected; replication is the only
	// mutation path.
	if err := follower.AddDocument(&Document{ID: "local", Text: "x"}); !errors.Is(err, ErrReadOnlyFollower) {
		t.Fatalf("local follower write = %v, want ErrReadOnlyFollower", err)
	}

	// Follower HTTP: ?min_version= gives read-your-writes against the
	// leader's ingest ack, and ingest endpoints answer 421.
	fsrv := httptest.NewServer(server.New(follower.Pipeline(),
		server.WithFollower(leaderSrv.URL),
		server.WithReplication(func() any { st, _ := follower.Replication(); return st }),
	))
	body, _ := json.Marshal(server.TupleRequest{
		ID: "e2e-http", Caption: wrong.Caption, Columns: wrong.Columns, Values: wrong.Values, Attr: "incumbent",
	})
	resp, err := http.Post(fmt.Sprintf("%s/v1/verify/tuple?min_version=%d", fsrv.URL, v), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var vr server.VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || vr.Verdict != "Refuted" {
		t.Fatalf("follower HTTP verify: status %d verdict %q", resp.StatusCode, vr.Verdict)
	}
	resp, err = http.Post(fsrv.URL+"/v1/ingest/document", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower HTTP ingest: status %d, want 421", resp.StatusCode)
	}
	fsrv.Close()

	// Restart mid-stream: close the follower, let the leader advance, and
	// reopen the same directory — the stream resumes from the durable
	// cursor with no gaps and no re-applied versions (a duplicate apply
	// would fail loudly on the duplicate IDs).
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	closed = true
	if err := leader.AddDocument(workload.MeaganGoodDoc()); err != nil {
		t.Fatal(err)
	}
	if err := leader.AddTriple(Triple{Subject: "tommy bolt", Predicate: "champion of", Object: "1958 u.s. open", SourceID: workload.CaseSource}); err != nil {
		t.Fatal(err)
	}
	v2 := leader.LakeVersion()

	resumed, err := OpenFollower(fdir, leaderSrv.URL, OpenOptions{Options: ExactOptions(1), Sync: "none"})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	waitReplicated(t, resumed, v2)
	if got := resumed.LakeVersion(); got != v2 {
		t.Fatalf("resumed follower at version %d, leader at %d", got, v2)
	}
	st, ok := resumed.Replication()
	if !ok || !st.Running || st.LastError != "" {
		t.Fatalf("resumed replication stats = %+v, want running with no error", st)
	}
	// The resumed follower serves evidence from checkpoint, pre-restart
	// stream, and post-restart stream alike.
	rep, err := resumed.VerifyClaim("e2e-golf", workload.GolfClaim())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Refuted {
		t.Fatalf("resumed follower golf verdict = %v, want Refuted", rep.Verdict)
	}
	lstats, fstats := leader.Pipeline().Lake().Stats(), resumed.Pipeline().Lake().Stats()
	if lstats != fstats {
		t.Fatalf("catalogs diverged: leader %+v follower %+v", lstats, fstats)
	}
}

// TestReplicationEndToEndCrossFormat is the upgrade-path acceptance case:
// a leader still writing the legacy JSON log feeds a follower running the
// binary default. The change feed carries the leader's encoding, the
// follower re-logs applies in its own; nothing negotiates and nothing
// migrates — the self-describing payload tag is the whole protocol.
func TestReplicationEndToEndCrossFormat(t *testing.T) {
	dir := t.TempDir()
	leader, leaderSrv := newLeaderFormat(t, filepath.Join(dir, "leader"), "json")
	if err := leader.Pipeline().Lake().AddSource(Source{ID: workload.CaseSource, Name: "cases", TrustPrior: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := leader.AddTable(workload.USOpen1954Table()); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Follower: binary default (WALFormat unset).
	fdir := filepath.Join(dir, "follower")
	follower, err := OpenFollower(fdir, leaderSrv.URL, OpenOptions{Options: ExactOptions(1), Sync: "none"})
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			follower.Close()
		}
	}()

	// Post-bootstrap evidence crosses the JSON wire into the binary log.
	if err := leader.AddTable(workload.OhioDistrictsTable()); err != nil {
		t.Fatal(err)
	}
	if err := leader.AddDocument(workload.MeaganGoodDoc()); err != nil {
		t.Fatal(err)
	}
	v := leader.LakeVersion()
	waitReplicated(t, follower, v)

	ohio := workload.OhioDistrictsTable()
	tp, _ := ohio.TupleAt(2)
	wrong := tp.WithValue("incumbent", "dave hobson")
	lrep, err := leader.VerifyImputedTuple("xfmt-fig1", wrong, "incumbent")
	if err != nil {
		t.Fatal(err)
	}
	frep, err := follower.VerifyImputedTuple("xfmt-fig1", wrong, "incumbent")
	if err != nil {
		t.Fatal(err)
	}
	if lrep.Verdict != frep.Verdict || frep.Verdict != Refuted {
		t.Fatalf("leader verdict %v, follower verdict %v, want both Refuted", lrep.Verdict, frep.Verdict)
	}

	// Restart the follower: its own (binary) WAL replays and the stream
	// resumes from the durable cursor against the JSON leader.
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	closed = true
	if err := leader.AddTriple(Triple{Subject: "tommy bolt", Predicate: "champion of", Object: "1958 u.s. open", SourceID: workload.CaseSource}); err != nil {
		t.Fatal(err)
	}
	v2 := leader.LakeVersion()

	resumed, err := OpenFollower(fdir, leaderSrv.URL, OpenOptions{Options: ExactOptions(1), Sync: "none"})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	waitReplicated(t, resumed, v2)
	lstats, fstats := leader.Pipeline().Lake().Stats(), resumed.Pipeline().Lake().Stats()
	if lstats != fstats {
		t.Fatalf("catalogs diverged across formats: leader %+v follower %+v", lstats, fstats)
	}
}

// BenchmarkReplicationLag measures leader ingest throughput with followers
// attached and the apply lag from leader commit to follower visibility.
// The lag percentiles are reported as lag-* metrics, which benchgate
// records but never gates (wall-clock lag is too environment-dependent to
// gate a CI run on).
func BenchmarkReplicationLag(b *testing.B) {
	for _, followers := range []int{1, 2} {
		b.Run(fmt.Sprintf("followers=%d", followers), func(b *testing.B) {
			dir := b.TempDir()
			leader, leaderSrv := newLeader(b, filepath.Join(dir, "leader"))
			if err := leader.Pipeline().Lake().AddSource(Source{ID: "bench", Name: "bench", TrustPrior: 0.9}); err != nil {
				b.Fatal(err)
			}
			reps := make([]*System, followers)
			for i := range reps {
				f, err := OpenFollower(filepath.Join(dir, fmt.Sprintf("f%d", i)), leaderSrv.URL,
					OpenOptions{Options: ExactOptions(1), Sync: "none"})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { f.Close() })
				reps[i] = f
			}

			lags := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if err := leader.AddDocument(&Document{
					ID:       fmt.Sprintf("bench-doc-%d", i),
					Text:     "replication lag benchmark body with some searchable words",
					SourceID: "bench",
				}); err != nil {
					b.Fatal(err)
				}
				v := leader.LakeVersion()
				for _, f := range reps {
					waitReplicated(b, f, v)
				}
				lags = append(lags, time.Since(t0))
			}
			elapsed := time.Since(start)
			b.StopTimer()

			sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "docs/sec")
			b.ReportMetric(float64(lags[len(lags)/2].Nanoseconds()), "lag-p50-ns")
			b.ReportMetric(float64(lags[len(lags)*99/100].Nanoseconds()), "lag-p99-ns")
		})
	}
}
