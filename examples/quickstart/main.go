// Quickstart: build a small multi-modal data lake, assemble a VerifAI
// system, and verify a generated claim against it — the Figure 4 scenario of
// the paper in ~50 lines of API use.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Build a data lake: tables and a text file, each attributed to a
	// source (sources carry trust priors).
	lake := verifai.NewLake()
	lake.AddSource(verifai.Source{ID: "web-tables", Name: "scraped web tables", TrustPrior: 0.8})
	for _, t := range []*verifai.Table{
		workload.USOpen1954Table(), // Figure 4's evidence table E1
		workload.USOpen1959Table(), // Figure 4's evidence table E2
		workload.OhioDistrictsTable(),
		workload.FilmographyTable(),
	} {
		t.SourceID = "web-tables"
		if err := lake.AddTable(t); err != nil {
			log.Fatal(err)
		}
	}
	if err := lake.AddDocument(workload.MeaganGoodDoc()); err != nil {
		log.Fatal(err)
	}

	// 2. Assemble the system: this indexes the lake (BM25 + vectors) and
	// wires up the Reranker and the Verifier agent.
	sys, err := verifai.NewSystem(lake, verifai.ExactOptions(42))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Verify a generated claim. This is the false claim from Figure 4 of
	// the paper: each of the three players actually won 570, totaling 1710.
	claimText := "In 1954 u.s. open (golf), the cash prize for tommy bolt, fred haas, and ben hogan was 960 in total."
	report, err := sys.VerifyClaimText("fig4-claim", claimText)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Claim: %s\n", claimText)
	fmt.Printf("Final verdict: %v (confidence %.2f)\n\n", report.Verdict, report.Confidence)
	for i, ev := range report.Evidence {
		fmt.Printf("Evidence %d: %s [%v by %s, source trust %.2f]\n",
			i+1, ev.Instance.ID, ev.Result.Verdict, ev.Result.Verifier, ev.SourceTrust)
		fmt.Printf("  %s\n", ev.Result.Explanation)
	}
}
