// Crossmodal demonstrates the paper's Section 5 "Cross-Modal Verification"
// direction: the same generated tuple is verified independently against
// every modality of the lake — counterpart tuples, entity text pages, and
// knowledge-graph triples — and the per-modality verdicts are compared.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		nTables = flag.Int("tables", 400, "lake tables")
		nTasks  = flag.Int("tasks", 6, "tuples to verify")
		seed    = flag.Uint64("seed", 11, "deterministic seed")
	)
	flag.Parse()

	cfg := workload.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumTables = *nTables
	cfg.NumTexts = *nTables / 2
	cfg.KGTableFraction = 1 // export every table's tuples as KG triples
	corpus, err := workload.GenerateLake(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats := corpus.Lake.Stats()
	fmt.Printf("lake: %d tables, %d texts, %d KG triples over %d entities\n\n",
		stats.Tables, stats.Docs, stats.Triples, stats.Entities)

	sys, err := verifai.NewSystem(corpus.Lake, verifai.ExactOptions(*seed))
	if err != nil {
		log.Fatal(err)
	}

	tasks, err := corpus.TupleTasks(*nTasks)
	if err != nil {
		log.Fatal(err)
	}

	modalities := []struct {
		name string
		kind verifai.Kind
	}{
		{"tuples  ", verifai.KindTuple},
		{"texts   ", verifai.KindText},
		{"entities", verifai.KindEntity},
	}

	for i, task := range tasks {
		// Alternate between verifying the true value and a corrupted one.
		tuple := task.Tuple
		label := "true value"
		if i%2 == 1 {
			tuple = tuple.WithValue(task.MaskedAttr(), task.TrueValue+" (fabricated)")
			label = "fabricated value"
		}
		fmt.Printf("tuple %d (%s): %s | verify %s\n", i+1, label, task.Entity(), task.MaskedAttr())
		for _, m := range modalities {
			rep, err := sys.VerifyImputedTuple(fmt.Sprintf("x%d-%v", i, m.kind), tuple, task.MaskedAttr(), m.kind)
			if err != nil {
				log.Fatal(err)
			}
			detail := "(no decisive evidence)"
			for _, ev := range rep.Evidence {
				if ev.Result.Verdict == rep.Verdict && rep.Verdict != verifai.NotRelated {
					detail = ev.Result.Explanation
					break
				}
			}
			fmt.Printf("    vs %s -> %-12v %s\n", m.name, rep.Verdict, detail)
		}
		fmt.Println()
	}
}
