// Tupleverify reproduces the Figure 1(a) workflow end to end: a generative
// model imputes missing tuple values from the paper's prompt template, and
// VerifAI verifies each imputed value against the data lake, flagging the
// hallucinations.
//
// Run with -tables/-tasks to scale the synthetic lake.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/llm"
	"repro/internal/table"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		nTables = flag.Int("tables", 600, "lake tables")
		nTasks  = flag.Int("tasks", 8, "tuples to impute and verify")
		seed    = flag.Uint64("seed", 7, "deterministic seed")
	)
	flag.Parse()

	// Generate a synthetic multi-modal lake (TabFact/WikiTable-TURL style).
	cfg := workload.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumTables = *nTables
	cfg.NumTexts = *nTables / 2
	corpus, err := workload.GenerateLake(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats := corpus.Lake.Stats()
	fmt.Printf("lake: %d tables / %d tuples / %d text files\n\n", stats.Tables, stats.Tuples, stats.Docs)

	sys, err := verifai.NewSystem(corpus.Lake, verifai.ExactOptions(*seed))
	if err != nil {
		log.Fatal(err)
	}

	// Sample tuple-completion tasks and let the simulated generator impute
	// the masked cells (it is right ~52% of the time, the paper's measured
	// no-evidence accuracy).
	tasks, err := corpus.TupleTasks(*nTasks)
	if err != nil {
		log.Fatal(err)
	}
	gen := llm.NewGenerator(*seed)

	correctCaught, wrongCaught := 0, 0
	for i, task := range tasks {
		tbl, _ := corpus.Lake.Table(task.TableID)

		// Show the paper's prompt template for the first task.
		if i == 0 {
			masked := tbl.Clone()
			masked.Rows[task.Row][task.MaskedCol] = table.Missing
			fmt.Println("--- prompt sent to the generator (paper's template) ---")
			fmt.Print(llm.TupleCompletionPrompt(masked))
			fmt.Println("--------------------------------------------------------")
		}

		imputed := gen.CompleteTuple(
			fmt.Sprintf("%s#%d#%s", task.TableID, task.Row, task.MaskedAttr()),
			task.TrueValue,
			tbl.Column(task.MaskedCol),
		)
		tuple := task.Tuple.WithValue(task.MaskedAttr(), imputed)

		report, err := sys.VerifyImputedTuple(fmt.Sprintf("task-%d", i), tuple, task.MaskedAttr())
		if err != nil {
			log.Fatal(err)
		}

		truthful := imputed == task.TrueValue
		fmt.Printf("tuple %d: %s | imputed %s=%q (truth %q) -> %v\n",
			i+1, task.Entity(), task.MaskedAttr(), imputed, task.TrueValue, report.Verdict)
		if len(report.Evidence) > 0 {
			fmt.Printf("          top evidence: %s — %s\n",
				report.Evidence[0].Instance.ID, report.Evidence[0].Result.Explanation)
		}
		if truthful && report.Verdict == verifai.Verified {
			correctCaught++
		}
		if !truthful && report.Verdict == verifai.Refuted {
			wrongCaught++
		}
	}
	fmt.Printf("\nverification confirmed %d correct imputations and caught %d hallucinations out of %d tasks\n",
		correctCaught, wrongCaught, len(tasks))
}
