// Claimverify reproduces Figure 4 of the paper against a full synthetic
// lake: the false golf prize-total claim is retrieved against thousands of
// tables, the 1954 U.S. Open leaderboard refutes it via an aggregation, the
// 1959 champions table is recognized as not related, and the complete
// provenance of the decision is printed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		nTables  = flag.Int("tables", 1000, "distractor tables in the lake")
		seed     = flag.Uint64("seed", 7, "deterministic seed")
		showProv = flag.Bool("provenance", false, "dump the full provenance record as JSON")
	)
	flag.Parse()

	cfg := workload.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumTables = *nTables
	cfg.NumTexts = 200
	corpus, err := workload.GenerateLake(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := corpus.AddCaseData(); err != nil {
		log.Fatal(err)
	}

	sys, err := verifai.NewSystem(corpus.Lake, verifai.ExactOptions(*seed))
	if err != nil {
		log.Fatal(err)
	}

	claim := workload.GolfClaim()
	fmt.Printf("Claim: %s\n", claim.Text)
	fmt.Println("(Ground truth: a false claim that should be Refuted)")
	fmt.Println()

	report, err := sys.VerifyClaim("fig4", claim)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Retrieved evidence and verification:")
	for _, ev := range report.Evidence {
		fmt.Printf("  %-28s %-12v %s\n", ev.Instance.ID, ev.Result.Verdict, ev.Result.Explanation)
	}
	fmt.Printf("\nVerification result: %v (confidence %.2f)\n", report.Verdict, report.Confidence)

	if *showProv {
		fmt.Println("\n--- provenance record ---")
		if err := sys.Provenance().WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
