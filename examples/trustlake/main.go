// Trustlake demonstrates challenges C3 (trustworthiness of data sources)
// and C4 (provenance of the verification process): a lake with a corrupted
// mirror source produces conflicting evidence; knowledge-based trust learned
// from cross-source agreement downweights the corrupted source, and the
// provenance store answers "which verdicts did the bad source taint?".
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/trust"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		nTables = flag.Int("tables", 200, "clean lake tables")
		nTasks  = flag.Int("tasks", 12, "tuples to verify")
		seed    = flag.Uint64("seed", 7, "deterministic seed")
	)
	flag.Parse()

	cfg := workload.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumTables = *nTables
	cfg.NumTexts = *nTables / 2
	corpus, err := workload.GenerateLake(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A corrupted mirror source: copies of task tables with the masked
	// attribute shifted, so the mirror refutes true values.
	const noisy = "shady-mirror"
	corpus.Lake.AddSource(verifai.Source{ID: noisy, Name: "uncurated mirror", TrustPrior: 0.5})
	tasks, err := corpus.TupleTasks(*nTasks)
	if err != nil {
		log.Fatal(err)
	}
	mirrored := map[string]bool{}
	for _, task := range tasks {
		if mirrored[task.TableID] {
			continue
		}
		mirrored[task.TableID] = true
		orig, _ := corpus.Lake.Table(task.TableID)
		m := orig.Clone()
		m.ID = "mirror-" + orig.ID
		m.SourceID = noisy
		for row := range m.Rows {
			m.Rows[row][task.MaskedCol] = m.Rows[row][task.MaskedCol] + " (disputed)"
		}
		if err := corpus.Lake.AddTable(m); err != nil {
			log.Fatal(err)
		}
	}

	sys, err := verifai.NewSystem(corpus.Lake, verifai.ExactOptions(*seed))
	if err != nil {
		log.Fatal(err)
	}

	// Pass 1: verify true tuples; collect per-source verdict votes.
	var votes []trust.Vote
	for i, task := range tasks {
		rep, err := sys.VerifyImputedTuple(fmt.Sprintf("t%d", i), task.Tuple, task.MaskedAttr())
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range rep.Evidence {
			if ev.Result.Verdict == verifai.NotRelated {
				continue
			}
			votes = append(votes, trust.Vote{
				SourceID: ev.Instance.SourceID,
				ItemID:   fmt.Sprintf("t%d", i),
				Value:    ev.Result.Verdict.String(),
			})
		}
	}

	// Learn source trust from agreement, seeded with the lake priors.
	priors := map[string]float64{}
	for _, s := range corpus.Lake.Sources() {
		priors[s.ID] = s.TrustPrior
	}
	priors[workload.SourceTables] = 0.8 // curated collection
	learned := trust.Estimate(votes, trust.Config{Priors: priors})

	fmt.Println("learned source trust from cross-source agreement:")
	srcs := make([]string, 0, len(learned))
	for s := range learned {
		srcs = append(srcs, s)
	}
	sort.Strings(srcs)
	for _, s := range srcs {
		fmt.Printf("  %-22s %.2f\n", s, learned[s])
		sys.SetSourceTrust(s, learned[s])
	}

	// Pass 2: with learned trust, the corrupted mirror no longer flips
	// verdicts.
	correct := 0
	for i, task := range tasks {
		rep, err := sys.VerifyImputedTuple(fmt.Sprintf("t%d-pass2", i), task.Tuple, task.MaskedAttr())
		if err != nil {
			log.Fatal(err)
		}
		if rep.Verdict == verifai.Verified {
			correct++
		}
	}
	fmt.Printf("\nwith learned trust, %d/%d true tuples resolve to Verified\n", correct, len(tasks))

	// Provenance: which verdicts did the mirror participate in?
	tainted := map[string]bool{}
	for _, tbl := range corpus.Lake.TableIDs() {
		if len(tbl) > 7 && tbl[:7] == "mirror-" {
			for row := 0; ; row++ {
				id := fmt.Sprintf("tuple:%s#%d", tbl, row)
				objs := sys.Provenance().TaintedBy(id)
				if len(objs) == 0 && row > 20 {
					break
				}
				for _, o := range objs {
					tainted[o] = true
				}
				if row > 20 {
					break
				}
			}
		}
	}
	fmt.Printf("provenance: %d verdicts used evidence from the corrupted mirror\n", len(tainted))
}
