package verifai

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/workload"
)

// caseLake builds a small lake from the paper's Figure 1/4 case data plus
// the Tommy Bolt entity page.
func caseLake(t *testing.T) *Lake {
	t.Helper()
	lake := NewLake()
	lake.AddSource(Source{ID: "cases", Name: "paper cases", TrustPrior: 0.9})
	for _, tbl := range []*Table{
		workload.OhioDistrictsTable(),
		workload.FilmographyTable(),
		workload.USOpen1954Table(),
		workload.USOpen1959Table(),
	} {
		if err := lake.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	if err := lake.AddDocument(workload.MeaganGoodDoc()); err != nil {
		t.Fatal(err)
	}
	return lake
}

// noiseFreeOptions disables the calibrated error injection so single-case
// assertions are stable.
func noiseFreeOptions(seed uint64) Options {
	o := DefaultOptions(seed)
	o.LLM.TupleEvidenceErr = 0
	o.LLM.TextEvidenceErr = 0
	o.LLM.LookupClaimErr = 0
	o.LLM.AggClaimErr = 0
	o.LLM.CountClaimErr = 0
	o.LLM.RelevanceErr = 0
	o.LLM.TupleRelevanceErr = 0
	o.Pasta.ClaimErr = 0
	return o
}

func TestQuickstartFlow(t *testing.T) {
	sys, err := NewSystem(caseLake(t), noiseFreeOptions(42))
	if err != nil {
		t.Fatal(err)
	}
	report, err := sys.VerifyClaimText("golf",
		"In 1954 u.s. open (golf), the cash prize for tommy bolt, fred haas, and ben hogan was 960 in total.")
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != Refuted {
		t.Fatalf("verdict = %v", report.Verdict)
	}
	found := false
	for _, ev := range report.Evidence {
		if ev.Result.Verdict == Refuted && strings.Contains(ev.Result.Explanation, "1710") {
			found = true
		}
	}
	if !found {
		t.Error("no evidence explanation contains the true total 1710")
	}
}

func TestVerifyImputedTuple(t *testing.T) {
	sys, err := NewSystem(caseLake(t), noiseFreeOptions(42))
	if err != nil {
		t.Fatal(err)
	}
	ohio := workload.OhioDistrictsTable()
	tp, _ := ohio.TupleAt(0)

	rep, err := sys.VerifyImputedTuple("ohio-1", tp, "incumbent")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Verified {
		t.Errorf("correct imputation = %v", rep.Verdict)
	}

	wrong := tp.WithValue("incumbent", "someone else")
	rep, err = sys.VerifyImputedTuple("ohio-1-bad", wrong, "incumbent")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Refuted {
		t.Errorf("wrong imputation = %v", rep.Verdict)
	}

	// Unknown attribute is rejected.
	if _, err := sys.VerifyImputedTuple("x", tp, "nonexistent"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestVerifyClaimAgainstTextEvidence(t *testing.T) {
	sys, err := NewSystem(caseLake(t), noiseFreeOptions(42))
	if err != nil {
		t.Fatal(err)
	}
	claim := workload.StompTheYardClaim() // true claim: role was april palmer
	rep, err := sys.VerifyClaim("stomp", claim, KindTable, KindText)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Verified {
		t.Fatalf("verdict = %v", rep.Verdict)
	}
	// Both a table and a text instance should appear as evidence.
	kinds := map[Kind]bool{}
	for _, ev := range rep.Evidence {
		kinds[ev.Instance.Kind] = true
	}
	if !kinds[KindTable] || !kinds[KindText] {
		t.Errorf("evidence kinds = %v, want table and text", kinds)
	}
}

func TestParseClaimErrors(t *testing.T) {
	if _, err := ParseClaim("free-form text with no template"); err == nil {
		t.Error("freeform text parsed")
	}
	sys, err := NewSystem(caseLake(t), noiseFreeOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.VerifyClaimText("x", "not a claim"); err == nil {
		t.Error("unparseable claim verified")
	}
}

func TestProvenanceRecorded(t *testing.T) {
	sys, err := NewSystem(caseLake(t), noiseFreeOptions(42))
	if err != nil {
		t.Fatal(err)
	}
	claim := workload.GolfClaim()
	rep, err := sys.VerifyClaim("golf", claim)
	if err != nil {
		t.Fatal(err)
	}
	store := sys.Provenance()
	if store == nil {
		t.Fatal("provenance disabled by default options")
	}
	rec, ok := store.Get(rep.ProvenanceSeq)
	if !ok {
		t.Fatal("provenance record missing")
	}
	if rec.ObjectID != "golf" || len(rec.Hits) == 0 || len(rec.Reranked) == 0 {
		t.Errorf("provenance record incomplete: %+v", rec)
	}
	// Reverse lineage: the 1954 table taints the golf verdict.
	tainted := store.TaintedBy("table:case-usopen-1954")
	if len(tainted) != 1 || tainted[0] != "golf" {
		t.Errorf("TaintedBy = %v", tainted)
	}
}

func TestNoProvenanceOption(t *testing.T) {
	o := noiseFreeOptions(1)
	o.RecordProvenance = false
	sys, err := NewSystem(caseLake(t), o)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Provenance() != nil {
		t.Error("provenance store exists despite option")
	}
}

func TestSetSourceTrustAffectsConfidence(t *testing.T) {
	sys, err := NewSystem(caseLake(t), noiseFreeOptions(42))
	if err != nil {
		t.Fatal(err)
	}
	sys.SetSourceTrust("cases", 0.95)
	rep, err := sys.VerifyClaim("golf2", workload.GolfClaim())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Refuted {
		t.Errorf("verdict = %v", rep.Verdict)
	}
}

func TestRetrieveOnly(t *testing.T) {
	sys, err := NewSystem(caseLake(t), noiseFreeOptions(42))
	if err != nil {
		t.Fatal(err)
	}
	claim := workload.GolfClaim()
	rep := sys.Retrieve(NewClaimObject("golf", claim), 5, KindTable)
	if len(rep) == 0 || rep[0] != "table:case-usopen-1954" {
		t.Errorf("Retrieve = %v", rep)
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, DefaultOptions(1)); err == nil {
		t.Error("nil lake accepted")
	}
	// Zero options are normalized to defaults.
	sys, err := NewSystem(caseLake(t), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Provenance() != nil {
		t.Error("zero options enabled provenance")
	}
}

func TestVerifyBatchPublicAPI(t *testing.T) {
	sys, err := NewSystem(caseLake(t), noiseFreeOptions(42))
	if err != nil {
		t.Fatal(err)
	}
	ohio := workload.OhioDistrictsTable()
	var objects []Generated
	for row := 0; row < ohio.NumRows(); row++ {
		tp, _ := ohio.TupleAt(row)
		objects = append(objects, NewTupleObject(fmt.Sprintf("b%d", row), tp, "incumbent"))
	}
	reports, err := sys.VerifyBatch(objects, 3, KindTuple)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reports {
		if rep.Verdict != Verified {
			t.Errorf("tuple %d verdict = %v", i, rep.Verdict)
		}
	}
}

// TestGenerationLifecycle exercises the Section 5 extension end to end:
// record generations, verify them, query accuracy per template, then
// re-verify after a lake change.
func TestGenerationLifecycle(t *testing.T) {
	sys, err := NewSystem(caseLake(t), noiseFreeOptions(42))
	if err != nil {
		t.Fatal(err)
	}
	store := NewGenerationStore()

	claim := workload.GolfClaim()
	if err := store.Record(Generation{
		ID: "gen-1", Template: "claim-answer",
		Prompt: "Was the prize total 960?", Output: claim.Text,
	}); err != nil {
		t.Fatal(err)
	}
	ohio := workload.OhioDistrictsTable()
	tp, _ := ohio.TupleAt(0)
	if err := store.Record(Generation{
		ID: "gen-2", Template: "tuple-completion",
		Prompt: "Fill the missing incumbent", Output: tp.String(),
	}); err != nil {
		t.Fatal(err)
	}

	// First verification sweep against lake stamp "v1".
	n, err := store.Reverify("v1", func(g Generation) (VerdictEntry, error) {
		var rep Report
		var err error
		switch g.Template {
		case "claim-answer":
			rep, err = sys.VerifyClaim(g.ID, claim)
		default:
			rep, err = sys.VerifyImputedTuple(g.ID, tp, "incumbent")
		}
		if err != nil {
			return VerdictEntry{}, err
		}
		return VerdictEntry{
			Verdict:       rep.Verdict.String(),
			Confidence:    rep.Confidence,
			ProvenanceSeq: rep.ProvenanceSeq,
		}, nil
	})
	if err != nil || n != 2 {
		t.Fatalf("Reverify = %d, %v", n, err)
	}

	if got := store.ByVerdict("Refuted"); len(got) != 1 || got[0] != "gen-1" {
		t.Errorf("refuted generations = %v", got)
	}
	if got := store.ByVerdict("Verified"); len(got) != 1 || got[0] != "gen-2" {
		t.Errorf("verified generations = %v", got)
	}
	acc := store.TemplateAccuracy()
	if acc["claim-answer"]["Refuted"] != 1 || acc["tuple-completion"]["Verified"] != 1 {
		t.Errorf("template accuracy = %v", acc)
	}
	// After a lake change everything is stale again.
	if got := store.StaleSince("v2"); len(got) != 2 {
		t.Errorf("stale after lake change = %v", got)
	}
}
