package verifai

import (
	"testing"
)

// TestLiveIngestEndToEnd checks the public live-lake API: instances
// ingested through System.AddTable/AddDocument/AddTriple after NewSystem
// are retrievable and verifiable without rebuilding, and each ingestion
// bumps the lake version.
func TestLiveIngestEndToEnd(t *testing.T) {
	lake := caseLake(t)
	sys, err := NewSystem(lake, noiseFreeOptions(42))
	if err != nil {
		t.Fatal(err)
	}
	base := sys.LakeVersion()

	// A claim about a table that does not exist yet.
	claimText := "In 1962 open championship, the prize for arnold palmer was 1400."
	report, err := sys.VerifyClaimText("pre-ingest", claimText)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict == Verified {
		t.Fatalf("claim verified before its evidence exists (verdict %v)", report.Verdict)
	}

	tbl := NewTable("open1962", "1962 open championship", []string{"player", "prize"})
	tbl.SourceID = "cases"
	tbl.MustAppendRow("arnold palmer", "1400")
	tbl.MustAppendRow("kel nagle", "750")
	if err := sys.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if got := sys.LakeVersion(); got != base+1 {
		t.Fatalf("lake version = %d after AddTable, want %d", got, base+1)
	}

	report, err = sys.VerifyClaimText("post-ingest", claimText)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != Verified {
		t.Fatalf("verdict = %v after ingesting evidence, want Verified", report.Verdict)
	}
	found := false
	for _, ev := range report.Evidence {
		if ev.Instance.ID == "table:open1962" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ingested table missing from evidence: %+v", report.Evidence)
	}

	// Documents and triples flow through the same live path.
	if err := sys.AddDocument(&Document{
		ID: "palmer-bio", Title: "Arnold Palmer", SourceID: "cases",
		Text: "Arnold Palmer won the 1962 open championship with a prize of 1400.",
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddTriple(Triple{
		Subject: "arnold palmer", Predicate: "prize of 1962 open championship",
		Object: "1400", SourceID: "cases",
	}); err != nil {
		t.Fatal(err)
	}
	if got := sys.LakeVersion(); got != base+3 {
		t.Fatalf("lake version = %d, want %d", got, base+3)
	}
	ids := sys.Retrieve(NewClaimObject("q", mustParse(t, claimText)), 10, KindText, KindEntity)
	var haveDoc, haveEntity bool
	for _, id := range ids {
		switch id {
		case "text:palmer-bio":
			haveDoc = true
		case "entity:arnold palmer":
			haveEntity = true
		}
	}
	if !haveDoc || !haveEntity {
		t.Fatalf("live document/entity not retrieved (doc=%v entity=%v): %v", haveDoc, haveEntity, ids)
	}

	// Duplicate ingestion is rejected without disturbing the version.
	if err := sys.AddTable(tbl); err == nil {
		t.Fatal("duplicate AddTable succeeded, want error")
	}
	if got := sys.LakeVersion(); got != base+3 {
		t.Fatalf("lake version = %d after rejected duplicate, want %d", got, base+3)
	}
}

func mustParse(t *testing.T, text string) Claim {
	t.Helper()
	c, err := ParseClaim(text)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
