package verifai

import (
	"testing"
)

// TestLiveIngestEndToEnd checks the public live-lake API: instances
// ingested through System.AddTable/AddDocument/AddTriple after NewSystem
// are retrievable and verifiable without rebuilding, and each ingestion
// bumps the lake version.
func TestLiveIngestEndToEnd(t *testing.T) {
	lake := caseLake(t)
	sys, err := NewSystem(lake, noiseFreeOptions(42))
	if err != nil {
		t.Fatal(err)
	}
	base := sys.LakeVersion()

	// A claim about a table that does not exist yet.
	claimText := "In 1962 open championship, the prize for arnold palmer was 1400."
	report, err := sys.VerifyClaimText("pre-ingest", claimText)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict == Verified {
		t.Fatalf("claim verified before its evidence exists (verdict %v)", report.Verdict)
	}

	tbl := NewTable("open1962", "1962 open championship", []string{"player", "prize"})
	tbl.SourceID = "cases"
	tbl.MustAppendRow("arnold palmer", "1400")
	tbl.MustAppendRow("kel nagle", "750")
	if err := sys.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if got := sys.LakeVersion(); got != base+1 {
		t.Fatalf("lake version = %d after AddTable, want %d", got, base+1)
	}

	report, err = sys.VerifyClaimText("post-ingest", claimText)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != Verified {
		t.Fatalf("verdict = %v after ingesting evidence, want Verified", report.Verdict)
	}
	found := false
	for _, ev := range report.Evidence {
		if ev.Instance.ID == "table:open1962" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ingested table missing from evidence: %+v", report.Evidence)
	}

	// Documents and triples flow through the same live path.
	if err := sys.AddDocument(&Document{
		ID: "palmer-bio", Title: "Arnold Palmer", SourceID: "cases",
		Text: "Arnold Palmer won the 1962 open championship with a prize of 1400.",
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddTriple(Triple{
		Subject: "arnold palmer", Predicate: "prize of 1962 open championship",
		Object: "1400", SourceID: "cases",
	}); err != nil {
		t.Fatal(err)
	}
	if got := sys.LakeVersion(); got != base+3 {
		t.Fatalf("lake version = %d, want %d", got, base+3)
	}
	ids := sys.Retrieve(NewClaimObject("q", mustParse(t, claimText)), 10, KindText, KindEntity)
	var haveDoc, haveEntity bool
	for _, id := range ids {
		switch id {
		case "text:palmer-bio":
			haveDoc = true
		case "entity:arnold palmer":
			haveEntity = true
		}
	}
	if !haveDoc || !haveEntity {
		t.Fatalf("live document/entity not retrieved (doc=%v entity=%v): %v", haveDoc, haveEntity, ids)
	}

	// Duplicate ingestion is rejected without disturbing the version.
	if err := sys.AddTable(tbl); err == nil {
		t.Fatal("duplicate AddTable succeeded, want error")
	}
	if got := sys.LakeVersion(); got != base+3 {
		t.Fatalf("lake version = %d after rejected duplicate, want %d", got, base+3)
	}
}

func mustParse(t *testing.T, text string) Claim {
	t.Helper()
	c, err := ParseClaim(text)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBatchIngestFlushClose checks the public pipelined batch API:
// System.AddBatch commits a mixed batch that is verifiable when the call
// returns, Flush reports the applied watermark, and Close rejects further
// writes while keeping the system queryable.
func TestBatchIngestFlushClose(t *testing.T) {
	lake := caseLake(t)
	sys, err := NewSystem(lake, noiseFreeOptions(42))
	if err != nil {
		t.Fatal(err)
	}
	base := sys.LakeVersion()

	tbl := NewTable("open1971", "1971 open championship", []string{"player", "prize"})
	tbl.SourceID = "cases"
	tbl.MustAppendRow("lee trevino", "5500")
	results, err := sys.AddBatch([]BatchItem{
		{Table: tbl},
		{Doc: &Document{ID: "trevino-bio", Title: "Lee Trevino", SourceID: "cases",
			Text: "Lee Trevino won the 1971 open championship."}},
		{Triple: &Triple{Subject: "lee trevino", Predicate: "nickname", Object: "supermex", SourceID: "cases"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("batch item %d rejected: %v", i, res.Err)
		}
		if res.Version != base+uint64(i)+1 {
			t.Fatalf("batch item %d version = %d, want %d", i, res.Version, base+uint64(i)+1)
		}
	}
	if got := sys.LakeVersion(); got != base+3 {
		t.Fatalf("lake version = %d after batch, want %d", got, base+3)
	}

	// Applied when AddBatch returns: verify immediately.
	report, err := sys.VerifyClaimText("batch", "In 1971 open championship, the prize for lee trevino was 5500.")
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != Verified {
		t.Fatalf("verdict = %v against batch-ingested table, want Verified", report.Verdict)
	}

	watermark, err := sys.Flush()
	if err != nil {
		t.Fatalf("Flush error: %v", err)
	}
	if watermark != base+3 {
		t.Fatalf("Flush watermark = %d, want %d", watermark, base+3)
	}

	if err := sys.Close(); err != nil {
		t.Fatalf("Close error: %v", err)
	}
	if err := sys.AddTable(NewTable("late", "late", []string{"a"})); err == nil {
		t.Fatal("AddTable after Close succeeded, want error")
	}
	if _, err := sys.AddBatch([]BatchItem{{Doc: &Document{ID: "late-doc", Text: "x"}}}); err == nil {
		t.Fatal("AddBatch after Close succeeded, want error")
	}
	// Still queryable on the final state.
	report, err = sys.VerifyClaimText("post-close", "In 1971 open championship, the prize for lee trevino was 5500.")
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != Verified {
		t.Fatalf("verdict = %v after Close, want Verified", report.Verdict)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("second Close error: %v", err)
	}
}
