package verifai

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdc"
	"repro/internal/datalake"
	"repro/internal/durable"
	"repro/internal/wal"
)

// This file is the follower role: a read-only replica of a leader system,
// bootstrapped from the leader's checkpoint and kept fresh by streaming
// the leader's WAL over the change feed (GET /v1/changes).

// ErrReadOnlyFollower reports a local write attempted on a follower
// system; detect it with errors.Is and send the write to the leader.
var ErrReadOnlyFollower = datalake.ErrReadOnly

// ReplicationStats describes a follower's replication posture for
// monitoring (the "replication" section of GET /v1/stats).
type ReplicationStats struct {
	// Leader is the URL this follower streams from.
	Leader string `json:"leader"`
	// LocalVersion is the highest lake version applied locally.
	LocalVersion uint64 `json:"local_version"`
	// LeaderVersion is the leader's version as of the last heartbeat (at
	// least LocalVersion; the gap is the replication lag in versions).
	LeaderVersion uint64 `json:"leader_version"`
	// AppliedRecords counts change-stream records applied since open.
	AppliedRecords uint64 `json:"applied_records"`
	// ApplyLagSeconds is the apply lag of the most recently applied batch:
	// follower apply time minus the leader's WAL append stamp (wal.Record.TS).
	// 0 until a stamped record is applied; clock skew between the nodes
	// shifts it (it is an operational signal, not an ordering primitive).
	ApplyLagSeconds float64 `json:"apply_lag_seconds,omitempty"`
	// Running reports whether the streaming loop is still live; when false,
	// LastError says why it stopped.
	Running   bool   `json:"running"`
	LastError string `json:"last_error,omitempty"`
}

// follower is the streaming loop attached to a follower System.
type follower struct {
	leader string
	cancel context.CancelFunc
	done   chan struct{}

	// lagNs is the most recent batch's apply lag in nanoseconds (follower
	// apply time minus the max leader append stamp in the batch).
	lagNs atomic.Int64

	mu            sync.Mutex
	applied       uint64
	leaderVersion uint64
	lastErr       error
}

// appliedRecords snapshots the applied-record counter.
func (f *follower) appliedRecords() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// OpenFollower opens dir as a read-only replica of the leader at the given
// base URL (e.g. "http://leader:8080"):
//
//  1. an empty directory bootstraps from GET /v1/replica/checkpoint — the
//     leader's latest checkpoint tar, restored atomically (a leader that
//     has never checkpointed means streaming from version 0 instead);
//  2. the directory then opens exactly as Open does (checkpoint + local
//     WAL replay), recovering the follower's replication cursor from its
//     own durable state;
//  3. the lake is marked read-only — local writes fail with the lake's
//     read-only error; mutations arrive only via replication — and a
//     background loop streams GET /v1/changes?from=<cursor>, applying
//     records through the same path crash recovery uses and logging them
//     to the follower's own WAL (a killed follower resumes from its local
//     cursor, not from zero);
//  4. verification, retrieval, and stats serve normally throughout, with
//     System.Replication reporting lag.
//
// Close stops the stream before shutting the pipeline down. The follower
// may checkpoint (bounding its own recovery time) and re-serve the change
// feed, chaining replication.
func OpenFollower(dir, leader string, opts OpenOptions) (*System, error) {
	client := &http.Client{} // no global timeout: the change feed is long-lived
	has, err := durable.HasCheckpoint(dir)
	if err != nil {
		return nil, fmt.Errorf("verifai: follower bootstrap: %w", err)
	}
	if !has {
		rc, err := cdc.FetchCheckpoint(context.Background(), client, leader)
		switch {
		case errors.Is(err, cdc.ErrNoCheckpoint):
			// Leader has never checkpointed: its WAL still holds everything,
			// so an empty follower streaming from 0 converges.
		case err != nil:
			return nil, fmt.Errorf("verifai: follower bootstrap: %w", err)
		default:
			restoreErr := durable.RestoreCheckpointTar(dir, rc)
			rc.Close()
			if restoreErr != nil {
				return nil, fmt.Errorf("verifai: follower bootstrap: %w", restoreErr)
			}
		}
	}

	policy, err := wal.ParseSyncPolicy(opts.Sync)
	if err != nil {
		return nil, fmt.Errorf("verifai: %w", err)
	}
	format, err := wal.ParseFormat(opts.WALFormat)
	if err != nil {
		return nil, fmt.Errorf("verifai: %w", err)
	}
	lakeOpts := make([]LakeOption, len(opts.LakeOptions))
	copy(lakeOpts, opts.LakeOptions)
	st, err := durable.Open(dir, durable.Options{
		Sync: policy, SyncInterval: opts.SyncInterval, SegmentBytes: opts.SegmentBytes,
		WALFormat: format, LakeOptions: lakeOpts,
	})
	if err != nil {
		return nil, fmt.Errorf("verifai: %w", err)
	}
	// Read-only before anything else can write: replication is the only
	// mutation path from here on (ReplayTail applies through it too).
	st.Lake().SetReadOnly(true)
	sys, err := newSystem(st.Lake(), opts.Options, st.IndexSnapshotDir())
	if err != nil {
		_ = st.Lake().Close()
		_ = st.Close()
		return nil, err
	}
	st.SetMetrics(sys.Metrics())
	if err := st.ReplayTail(); err != nil {
		sys.pipeline.Indexer().Close()
		_ = st.Lake().Close()
		_ = st.Close()
		return nil, fmt.Errorf("verifai: %w", err)
	}
	st.Arm()
	sys.durable = st

	ctx, cancel := context.WithCancel(context.Background())
	f := &follower{leader: leader, cancel: cancel, done: make(chan struct{})}
	sys.follower = f
	reg := sys.Metrics()
	reg.GaugeFunc("verifai_replication_lag_records",
		"Replication lag in lake versions (leader's last heartbeat version minus locally applied).",
		func() float64 {
			stats, ok := sys.Replication()
			if !ok || stats.LeaderVersion < stats.LocalVersion {
				return 0
			}
			return float64(stats.LeaderVersion - stats.LocalVersion)
		})
	reg.GaugeFunc("verifai_replication_lag_seconds",
		"Apply lag of the most recently replicated batch in seconds (leader append stamp to follower apply).",
		func() float64 { return time.Duration(f.lagNs.Load()).Seconds() })
	reg.CounterFunc("verifai_replication_applied_records_total",
		"Change-stream records applied by this follower since open.", f.appliedRecords)
	go f.run(ctx, client, st)
	return sys, nil
}

// run streams the leader's change feed until ctx is canceled or the stream
// fails fatally (apply error, cursor fallen below the leader's floor).
func (f *follower) run(ctx context.Context, client *http.Client, st *durable.Store) {
	defer close(f.done)
	err := cdc.Follow(ctx, cdc.FollowOptions{
		Leader: f.leader,
		Client: client,
		From:   st.Lake().CommittedVersion,
		Apply: func(recs []wal.Record) error {
			var maxTS int64
			for _, rec := range recs {
				if rec.TS > maxTS {
					maxTS = rec.TS
				}
			}
			n, err := st.ApplyReplicated(recs)
			if err == nil && maxTS > 0 {
				f.lagNs.Store(time.Now().UnixNano() - maxTS)
			}
			f.mu.Lock()
			f.applied += uint64(n)
			f.mu.Unlock()
			return err
		},
		OnHeartbeat: func(v uint64) {
			f.mu.Lock()
			if v > f.leaderVersion {
				f.leaderVersion = v
			}
			f.mu.Unlock()
		},
	})
	if err != nil && ctx.Err() == nil {
		f.mu.Lock()
		f.lastErr = err
		f.mu.Unlock()
	}
}

// stop cancels the streaming loop and waits for it to exit.
func (f *follower) stop() {
	f.cancel()
	<-f.done
}

// Replication reports the follower's streaming posture; ok is false for
// systems that are not followers.
func (s *System) Replication() (ReplicationStats, bool) {
	f := s.follower
	if f == nil {
		return ReplicationStats{}, false
	}
	local := s.pipeline.Lake().CommittedVersion()
	f.mu.Lock()
	defer f.mu.Unlock()
	stats := ReplicationStats{
		Leader:          f.leader,
		LocalVersion:    local,
		LeaderVersion:   f.leaderVersion,
		AppliedRecords:  f.applied,
		ApplyLagSeconds: time.Duration(f.lagNs.Load()).Seconds(),
	}
	if stats.LeaderVersion < local {
		stats.LeaderVersion = local // heartbeats lag applied records
	}
	select {
	case <-f.done:
		if f.lastErr != nil {
			stats.LastError = f.lastErr.Error()
		}
	default:
		stats.Running = true
	}
	return stats, true
}

// ChangeFeed exposes the durable store's replication surfaces in the shape
// server.WithChangeFeed wants: the WAL for tail-serving, the checkpoint
// version as the feed floor, the checkpoint-tar writer for follower
// bootstrap, and the log's payload format so the wire encoding matches the
// configured -wal-format. ok is false for in-memory systems (NewSystem),
// which have no WAL to serve.
func (s *System) ChangeFeed() (log *wal.Log, floor func() uint64, checkpointTar func(io.Writer) error, format wal.Format, ok bool) {
	if s.durable == nil {
		return nil, nil, nil, wal.FormatBinary, false
	}
	return s.durable.WAL(), s.durable.CheckpointVersion, s.durable.WriteCheckpointTar, s.durable.WAL().Format(), true
}
