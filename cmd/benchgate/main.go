// Command benchgate compares a `go test -bench` run against a committed
// baseline and exits non-zero when any gated metric regressed beyond the
// threshold — the CI benchmark-regression gate:
//
//	go run ./cmd/benchgate -baseline bench_baseline.txt -current bench.txt
//
// Gated metrics are p50 latency (p50-ns; grows = regression) and
// throughput (any */sec unit; shrinks = regression). Raw ns/op, tail
// latency, allocation counters, and quality metrics (recall, accuracy)
// are recorded in the artifacts but not gated — they are too noisy or not
// performance. Benchmarks present on only one side are skipped, so the
// gate tolerates adding or retiring benchmarks. Refresh the baseline with
// the command printed in bench_baseline.txt after an intentional change.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"

	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	baselinePath := flag.String("baseline", "bench_baseline.txt", "committed baseline bench output")
	currentPath := flag.String("current", "bench.txt", "freshly measured bench output")
	threshold := flag.Float64("threshold", 0.25, "fractional regression that fails the gate")
	filter := flag.String("filter", "", "regexp limiting which benchmarks are gated (default: all)")
	pipelineFloor := flag.Float64("pipeline-floor", 0,
		"if > 0, require pipelined ingest docs/sec >= floor * serialized docs/sec within the current run (machine-independent; 0 disables)")
	obsFloor := flag.Float64("obs-floor", 0,
		"if > 0, require instrumented ingest docs/sec >= floor * bare docs/sec within the current run (observability overhead budget; 0 disables)")
	walEncCeiling := flag.Float64("walenc-ceiling", 0,
		"if > 0, require binary WAL bytes/rec <= ceiling * JSON bytes/rec within the current run (record codec size claim; 0 disables)")
	flag.Parse()

	baseline := parse(*baselinePath)
	current := parse(*currentPath)

	// The absolute comparison below is only meaningful against a baseline
	// from comparable hardware; this relative check holds on any machine:
	// the pipelined write path must never cost throughput vs the serialized
	// emulation measured in the same run.
	failed := false
	if *pipelineFloor > 0 {
		for _, writers := range []string{"1", "4", "16"} {
			num := "BenchmarkIngestThroughput/pipelined/writers=" + writers
			den := "BenchmarkIngestThroughput/serialized/writers=" + writers
			ratio, ok := metrics.RatioCheck(current, "docs/sec", num, den)
			if !ok {
				continue
			}
			if ratio < *pipelineFloor {
				fmt.Printf("REGRESSION: pipelined/serialized docs/sec at %s writer(s) = %.2f, floor %.2f\n",
					writers, ratio, *pipelineFloor)
				failed = true
			} else {
				fmt.Printf("benchgate: pipelined/serialized docs/sec at %s writer(s) = %.2f (floor %.2f)\n",
					writers, ratio, *pipelineFloor)
			}
		}
	}
	// Same shape for the observability budget: metrics and span timers on
	// the ingest hot path must not buy throughput regressions, measured
	// bare-vs-instrumented in one run so hardware drops out.
	if *obsFloor > 0 {
		num := "BenchmarkObsOverhead/instrumented"
		den := "BenchmarkObsOverhead/bare"
		if ratio, ok := metrics.RatioCheck(current, "docs/sec", num, den); ok {
			if ratio < *obsFloor {
				fmt.Printf("REGRESSION: instrumented/bare ingest docs/sec = %.2f, floor %.2f\n", ratio, *obsFloor)
				failed = true
			} else {
				fmt.Printf("benchgate: instrumented/bare ingest docs/sec = %.2f (floor %.2f)\n", ratio, *obsFloor)
			}
		}
	}
	// The WAL codec's size claim is a ceiling, not a floor: both encodings
	// frame the identical records in the same process, so the ratio is
	// machine-independent and must stay at or below the bound (binary at
	// least 30% smaller than JSON at the default 0.7).
	if *walEncCeiling > 0 {
		num := "BenchmarkWALEncode/binary"
		den := "BenchmarkWALEncode/json"
		if ratio, ok := metrics.RatioCheck(current, "bytes/rec", num, den); ok {
			if ratio > *walEncCeiling {
				fmt.Printf("REGRESSION: binary/json WAL bytes/rec = %.3f, ceiling %.3f\n", ratio, *walEncCeiling)
				failed = true
			} else {
				fmt.Printf("benchgate: binary/json WAL bytes/rec = %.3f (ceiling %.3f)\n", ratio, *walEncCeiling)
			}
		} else {
			fmt.Printf("REGRESSION: -walenc-ceiling set but BenchmarkWALEncode bytes/rec missing from current run\n")
			failed = true
		}
	}
	if *filter != "" {
		re, err := regexp.Compile(*filter)
		if err != nil {
			log.Fatalf("bad -filter: %v", err)
		}
		baseline = keep(baseline, re)
		current = keep(current, re)
	}
	if len(current) == 0 {
		log.Fatalf("no benchmark results in %s", *currentPath)
	}

	regressions := metrics.CompareBench(baseline, current, *threshold)
	fmt.Printf("benchgate: compared %d benchmark(s) at threshold %.0f%%\n", len(current), 100**threshold)
	for _, r := range regressions {
		fmt.Printf("REGRESSION: %s\n", r)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchgate: no regressions")
}

func parse(path string) []metrics.BenchSample {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	samples, err := metrics.ParseBench(f)
	if err != nil {
		log.Fatalf("parse %s: %v", path, err)
	}
	return samples
}

func keep(samples []metrics.BenchSample, re *regexp.Regexp) []metrics.BenchSample {
	out := samples[:0]
	for _, s := range samples {
		if re.MatchString(s.Name) {
			out = append(out, s)
		}
	}
	return out
}
