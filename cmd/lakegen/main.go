// Command lakegen generates a synthetic multi-modal data lake — TabFact-like
// tables, WikiTable-TURL-like entity pages, derived knowledge-graph triples,
// and the paper's Figure 1/4 case data — and writes it to a directory that
// cmd/verifai can load.
//
// Usage:
//
//	lakegen -out ./lake [-tables 3000] [-texts 1500] [-seed 1] [-paper] [-cases]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/lakeio"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lakegen: ")

	var (
		out    = flag.String("out", "", "output directory (required)")
		tables = flag.Int("tables", 3000, "number of tables")
		texts  = flag.Int("texts", 1500, "max entity text files")
		seed   = flag.Uint64("seed", 1, "deterministic seed")
		paper  = flag.Bool("paper", false, "use the paper's Section 4 dimensions (19,498 tables / 13,796 texts)")
		cases  = flag.Bool("cases", true, "include the Figure 1/4 case tables and the Meagan Good page")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("-out is required")
	}

	cfg := workload.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumTables = *tables
	cfg.NumTexts = *texts
	if *paper {
		cfg = workload.PaperScale()
		cfg.Seed = *seed
	}

	corpus, err := workload.GenerateLake(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *cases {
		if err := corpus.AddCaseData(); err != nil {
			log.Fatal(err)
		}
	}
	if err := lakeio.Save(corpus.Lake, *out); err != nil {
		log.Fatal(err)
	}
	s := corpus.Lake.Stats()
	fmt.Printf("wrote %s: %d tables, %d tuples, %d text files, %d triples, %d sources\n",
		*out, s.Tables, s.Tuples, s.Docs, s.Triples, s.Sources)
}
