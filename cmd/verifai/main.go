// Command verifai verifies generated data against a multi-modal data lake
// from the command line.
//
// Subcommands:
//
//	verifai stats  -lake DIR
//	    print lake statistics
//	verifai claim  -lake DIR -text "In <caption>, the <attr> for <entity> was <value>."
//	    verify a textual claim against the lake's tables
//	verifai tuple  -lake DIR -table ID -row N -attr NAME [-value V]
//	    verify (or re-verify with an overridden value) one tuple attribute
//	verifai demo
//	    run the paper's Figure 1 and Figure 4 cases on the built-in case lake
//	verifai serve -lake DIR -addr :8080 [-shards N] [-ingest-queue N]
//	              [-quantize] [-rerank-multiple N]
//	              [-verify-concurrency N] [-verify-timeout 30s]
//	              [-read-timeout 30s] [-read-header-timeout 5s]
//	              [-idle-timeout 2m]
//	              [-data-dir DIR] [-fsync always|interval|none]
//	              [-checkpoint-every 5m] [-debug-addr :6060]
//	    serve the verification pipeline as an HTTP JSON API over the live
//	    lake (reads keep being served while /v1/ingest/* writes arrive);
//	    ingestion is pipelined — embedding runs outside the lake's write
//	    lock and POST /v1/ingest/batch commits mixed batches under one
//	    lock acquisition; -shards enables the sharded parallel
//	    retrieval/applier layout, -ingest-queue bounds the in-flight
//	    ingest event queue, and -quantize stores flat vector shards
//	    int8-scalar-quantized (4x smaller, faster scans) with the top
//	    -rerank-multiple*k candidates re-ranked in exact float math. The verify endpoints are admission-controlled
//	    (-verify-concurrency; saturated requests answer 429) and
//	    deadline-bounded (-verify-timeout; expiry aborts the pipeline
//	    mid-flight and answers 504), repeated identical verifications hit
//	    the versioned result cache, and the listener enforces
//	    read/header/idle timeouts so slow or idle clients cannot pin
//	    connections open. With -data-dir the lake is durable: every
//	    acknowledged write lands in a write-ahead log before it commits,
//	    checkpoints snapshot catalog+indexes (periodically with
//	    -checkpoint-every, on demand via POST /v1/admin/checkpoint, and
//	    at shutdown) without pausing ingestion — writers wait only for
//	    the short fork phase while the snapshot writes in the background
//	    — and a restart recovers everything. The data dir is flock-owned
//	    by one process (a second server fails fast). -lake seeds an
//	    empty data dir; SIGINT/SIGTERM drains connections, checkpoints,
//	    and closes cleanly. Durable deployments also serve the change
//	    feed: GET /v1/changes streams the WAL (cursor-resumable, for
//	    followers and CDC consumers) and GET /v1/replica/checkpoint
//	    ships the latest checkpoint for follower bootstrap. Every serve
//	    deployment exposes GET /metrics (Prometheus text exposition) on
//	    the API listener; -debug-addr adds a side listener with
//	    /debug/pprof/*, /debug/traces (recent per-request stage traces),
//	    and a second /metrics, kept off the public API port.
//	verifai follow -leader URL -data-dir DIR [-addr :8081] [...]
//	    run a read-only replica of the leader at URL: bootstrap from its
//	    checkpoint, stream its change feed, serve the same read API
//	    (verify with ?min_version= for read-your-writes, stats with a
//	    replication section, its own change feed); ingest endpoints
//	    answer 421 Misdirected Request naming the leader
//	verifai waldump [-data-dir DIR | FILE...]
//	    stream WAL segments as JSON lines on stdout (one record per
//	    line, `jq`-ready) regardless of the on-disk payload encoding —
//	    the debugging channel for logs written with -wal-format=binary
//
// The lake directory is produced by cmd/lakegen (or any tool writing the
// lakeio layout). Add -exact=false to enable the calibrated error profiles
// used by the experiments.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro"
	"repro/internal/genstore"
	"repro/internal/lakeio"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/workload"
)

// logger is the process-wide structured logger: operational events from the
// serving path (and one line per HTTP request via server.WithLogger) go to
// stderr as logfmt-style key=value text.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "stats":
		err = runStats(os.Args[2:])
	case "claim":
		err = runClaim(os.Args[2:])
	case "tuple":
		err = runTuple(os.Args[2:])
	case "demo":
		err = runDemo(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "follow":
		err = runFollow(os.Args[2:])
	case "waldump":
		err = runWaldump(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "verifai: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: verifai <stats|claim|tuple|demo|serve|follow|waldump> [flags]")
	os.Exit(2)
}

// commonFlags registers the flags shared by lake-based subcommands.
func commonFlags(fs *flag.FlagSet) (lakeDir *string, seed *uint64, exact *bool) {
	lakeDir = fs.String("lake", "", "lake directory from cmd/lakegen (required)")
	seed = fs.Uint64("seed", 1, "deterministic seed")
	exact = fs.Bool("exact", true, "exact reasoning (no calibrated error injection)")
	return
}

// indexTuning carries the serving-path indexer knobs from flags into
// buildSystem / openDurable.
type indexTuning struct {
	shards         int  // index shards per kind and family (0 = unsharded)
	quantize       bool // int8 scalar-quantize flat vector shards
	rerankMultiple int  // quantized re-rank candidate multiple (0 = default)
	snapshotRetain int  // retained time-travel snapshots (0 = default)
}

func (t indexTuning) apply(opts *verifai.Options) {
	if t.shards > 0 {
		opts.Indexer.Shards = t.shards
	}
	if t.quantize {
		opts.Indexer.Quantize = true
	}
	if t.rerankMultiple > 0 {
		opts.Indexer.RerankMultiple = t.rerankMultiple
	}
	if t.snapshotRetain > 0 {
		opts.Pipeline.SnapshotRetain = t.snapshotRetain
	}
}

func buildSystem(lakeDir string, seed uint64, exact bool, tune indexTuning, ingestQueue int) (*verifai.System, *verifai.Lake, error) {
	if lakeDir == "" {
		return nil, nil, fmt.Errorf("-lake is required")
	}
	var lakeOpts []verifai.LakeOption
	if ingestQueue > 0 {
		lakeOpts = append(lakeOpts, verifai.WithIngestQueue(ingestQueue))
	}
	lake, err := lakeio.Load(lakeDir, lakeOpts...)
	if err != nil {
		return nil, nil, err
	}
	opts := verifai.DefaultOptions(seed)
	if exact {
		opts = verifai.ExactOptions(seed)
	}
	tune.apply(&opts)
	sys, err := verifai.NewSystem(lake, opts)
	if err != nil {
		return nil, nil, err
	}
	return sys, lake, nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	lakeDir, _, _ := commonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *lakeDir == "" {
		return fmt.Errorf("-lake is required")
	}
	lake, err := lakeio.Load(*lakeDir)
	if err != nil {
		return err
	}
	s := lake.Stats()
	fmt.Printf("tables:   %d\ntuples:   %d\ntexts:    %d\ntriples:  %d\nentities: %d\nsources:  %d\n",
		s.Tables, s.Tuples, s.Docs, s.Triples, s.Entities, s.Sources)
	for _, src := range lake.Sources() {
		fmt.Printf("  source %-24s trust prior %.2f  (%s)\n", src.ID, src.TrustPrior, src.Name)
	}
	return nil
}

func runClaim(args []string) error {
	fs := flag.NewFlagSet("claim", flag.ExitOnError)
	lakeDir, seed, exact := commonFlags(fs)
	text := fs.String("text", "", "claim text (required)")
	withTexts := fs.Bool("texts", false, "also use text files as evidence")
	record := fs.String("record", "", "append the generation and verdict to this genstore JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *text == "" {
		return fmt.Errorf("-text is required")
	}
	sys, _, err := buildSystem(*lakeDir, *seed, *exact, indexTuning{}, 0)
	if err != nil {
		return err
	}
	kinds := []verifai.Kind{verifai.KindTable}
	if *withTexts {
		kinds = append(kinds, verifai.KindText)
	}
	report, err := sys.VerifyClaimText("cli-claim", *text, kinds...)
	if err != nil {
		return err
	}
	printReport(report)
	if *record != "" {
		return recordGeneration(*record, "claim", *text, report, *lakeDir)
	}
	return nil
}

// recordGeneration appends a generation + verdict to a genstore JSON file,
// creating it when absent (the Section 5 "managing generated data" flow).
func recordGeneration(path, template, output string, report verifai.Report, lakeStamp string) error {
	store := verifai.NewGenerationStore()
	if data, err := os.ReadFile(path); err == nil {
		loaded, err := genstore.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("load genstore %s: %w", path, err)
		}
		store = loaded
	}
	id := fmt.Sprintf("gen-%06d", store.Len())
	if err := store.Record(verifai.Generation{ID: id, Template: template, Output: output}); err != nil {
		return err
	}
	if err := store.AddVerdict(id, verifai.VerdictEntry{
		Verdict:       report.Verdict.String(),
		Confidence:    report.Confidence,
		ProvenanceSeq: report.ProvenanceSeq,
		LakeStamp:     lakeStamp,
	}); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := store.WriteJSON(&buf); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("write genstore %s: %w", path, err)
	}
	fmt.Printf("recorded as %s in %s\n", id, path)
	return nil
}

func runTuple(args []string) error {
	fs := flag.NewFlagSet("tuple", flag.ExitOnError)
	lakeDir, seed, exact := commonFlags(fs)
	tableID := fs.String("table", "", "table ID in the lake (required)")
	row := fs.Int("row", 0, "row index")
	attr := fs.String("attr", "", "attribute to verify (required)")
	value := fs.String("value", "", "override the attribute value (simulates a generated value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tableID == "" || *attr == "" {
		return fmt.Errorf("-table and -attr are required")
	}
	sys, lake, err := buildSystem(*lakeDir, *seed, *exact, indexTuning{}, 0)
	if err != nil {
		return err
	}
	tbl, ok := lake.Table(*tableID)
	if !ok {
		return fmt.Errorf("table %q not in lake", *tableID)
	}
	tp, ok := tbl.TupleAt(*row)
	if !ok {
		return fmt.Errorf("row %d out of range (table has %d rows)", *row, tbl.NumRows())
	}
	if *value != "" {
		tp = tp.WithValue(*attr, *value)
	}
	fmt.Printf("verifying: %s\n\n", tp.String())
	report, err := sys.VerifyImputedTuple("cli-tuple", tp, *attr)
	if err != nil {
		return err
	}
	printReport(report)
	return nil
}

func runDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "deterministic seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lake := verifai.NewLake()
	lake.AddSource(verifai.Source{ID: workload.CaseSource, Name: "paper case studies", TrustPrior: 0.9})
	for _, t := range []*verifai.Table{
		workload.OhioDistrictsTable(), workload.FilmographyTable(),
		workload.USOpen1954Table(), workload.USOpen1959Table(),
	} {
		if err := lake.AddTable(t); err != nil {
			return err
		}
	}
	if err := lake.AddDocument(workload.MeaganGoodDoc()); err != nil {
		return err
	}
	sys, err := verifai.NewSystem(lake, verifai.ExactOptions(*seed))
	if err != nil {
		return err
	}

	fmt.Println("=== Figure 4: the golf prize-total claim ===")
	report, err := sys.VerifyClaim("demo-fig4", workload.GolfClaim())
	if err != nil {
		return err
	}
	fmt.Printf("claim: %s\n", workload.GolfClaim().Text)
	printReport(report)

	fmt.Println("\n=== Figure 1(a): imputed incumbent (wrong) ===")
	ohio := workload.OhioDistrictsTable()
	tp, _ := ohio.TupleAt(2)
	wrong := tp.WithValue("incumbent", "dave hobson")
	report, err = sys.VerifyImputedTuple("demo-fig1", wrong, "incumbent")
	if err != nil {
		return err
	}
	fmt.Printf("tuple: %s\n", wrong.String())
	printReport(report)
	return nil
}

func printReport(r verifai.Report) {
	fmt.Printf("verdict: %v (confidence %.2f)\n", r.Verdict, r.Confidence)
	for i, ev := range r.Evidence {
		fmt.Printf("  %d. %-28s %-12v [%s, trust %.2f]\n", i+1, ev.Instance.ID,
			ev.Result.Verdict, ev.Result.Verifier, ev.SourceTrust)
		fmt.Printf("     %s\n", ev.Result.Explanation)
	}
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	lakeDir, seed, exact := commonFlags(fs)
	addr := fs.String("addr", ":8080", "listen address")
	shards := fs.Int("shards", 0, "index shards per kind and family (0 = unsharded)")
	quantize := fs.Bool("quantize", false, "int8 scalar-quantize flat vector shards; searches re-rank candidates with exact float math")
	rerankMultiple := fs.Int("rerank-multiple", 0, "quantized search scans rerank-multiple*k candidates before exact re-rank (0 = default 4)")
	ingestQueue := fs.Int("ingest-queue", 0, "bound on the in-flight ingest event queue (0 = default 256)")
	verifyConcurrency := fs.Int("verify-concurrency", 0, "max concurrently admitted verify requests; beyond it requests answer 429 (0 = 4x GOMAXPROCS, <0 = unlimited)")
	verifyTimeout := fs.Duration("verify-timeout", 30*time.Second, "per-request verification deadline; expiry aborts the pipeline and answers 504 (0 = client-bounded only)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "max duration for reading an entire request, body included (0 = unlimited)")
	readHeaderTimeout := fs.Duration("read-header-timeout", 5*time.Second, "max duration for reading request headers; defeats slowloris clients (0 = falls back to -read-timeout)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time between requests (0 = falls back to -read-timeout)")
	dataDir := fs.String("data-dir", "", "durable data directory (WAL + checkpoints); empty serves in-memory")
	fsync := fs.String("fsync", "interval", "WAL sync policy: always|interval|none (with -data-dir)")
	walFormat := fs.String("wal-format", "binary", "WAL record payload encoding for new appends: binary|json (existing logs replay under either; segments may mix)")
	checkpointEvery := fs.Duration("checkpoint-every", 0, "periodic checkpoint cadence, e.g. 5m (0 = only on shutdown and POST /v1/admin/checkpoint)")
	snapshotRetain := fs.Int("snapshot-retain", 0, "retained time-travel snapshots beyond explicit pins; older unpinned snapshots are collected (0 = default 8)")
	debugAddr := fs.String("debug-addr", "", "side listener for /debug/pprof/*, /debug/traces, and /metrics (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sys *verifai.System
	tune := indexTuning{shards: *shards, quantize: *quantize, rerankMultiple: *rerankMultiple, snapshotRetain: *snapshotRetain}
	serverOpts := []server.Option{server.WithVerifyTimeout(*verifyTimeout)}
	if *verifyConcurrency != 0 {
		serverOpts = append(serverOpts, server.WithVerifyConcurrency(*verifyConcurrency))
	}
	if *dataDir != "" {
		var err error
		sys, err = openDurable(*dataDir, *lakeDir, *seed, *exact, tune, *ingestQueue, *fsync, *walFormat)
		if err != nil {
			return err
		}
		serverOpts = append(serverOpts, server.WithDurability(
			func() verifai.DurabilityStats { st, _ := sys.Durability(); return st },
			sys.Checkpoint,
		))
		// The WAL doubles as the change feed: followers and CDC consumers
		// stream GET /v1/changes, bootstrapping from /v1/replica/checkpoint.
		if wlog, floor, ckpt, format, ok := sys.ChangeFeed(); ok {
			serverOpts = append(serverOpts, server.WithChangeFeed(server.ChangeFeedConfig{
				Log: wlog, Floor: floor, CheckpointTar: ckpt, Format: format,
			}))
		}
	} else {
		var err error
		sys, _, err = buildSystem(*lakeDir, *seed, *exact, tune, *ingestQueue)
		if err != nil {
			return err
		}
	}
	// Route POST /v1/snapshots through the system so durable mode persists
	// pins across restarts (in-memory mode they just live in the registry).
	serverOpts = append(serverOpts, server.WithSnapshots(sys.PinSnapshot, sys.UnpinSnapshot))

	stats := sys.Pipeline().Lake().Stats()
	logger.Info("serving", "tables", stats.Tables, "texts", stats.Docs,
		"lake_version", sys.LakeVersion(), "addr", *addr)
	return serveLoop(sys, *addr, *debugAddr, serverOpts, listenerTimeouts{
		read: *readTimeout, readHeader: *readHeaderTimeout, idle: *idleTimeout,
	}, *checkpointEvery, *dataDir != "")
}

// listenerTimeouts carries the http.Server timeout knobs shared by serve
// and follow.
type listenerTimeouts struct {
	read, readHeader, idle time.Duration
}

// serveLoop runs the HTTP server over an assembled system until
// SIGINT/SIGTERM, then drains connections, takes a final checkpoint
// (durable mode), and closes the system — the lifecycle shared by the
// serve (leader / standalone) and follow (replica) subcommands. A
// non-empty debugAddr starts a side listener serving /debug/pprof/*,
// /debug/traces, and /metrics — a separate port so profiling and
// introspection never ride the public API surface.
func serveLoop(sys *verifai.System, addr, debugAddr string, serverOpts []server.Option, lt listenerTimeouts, checkpointEvery time.Duration, durable bool) error {
	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections,
	// drain in-flight requests, take a final checkpoint (durable mode),
	// and close the system so no accepted write is lost.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Every serve path shares the system's metric registry and the process
	// logger: the server records per-request metrics into the same registry
	// the lake/WAL/pipeline instruments write to, so GET /metrics is one
	// coherent scrape.
	serverOpts = append(serverOpts, server.WithObs(sys.Metrics()), server.WithLogger(logger))
	// The listener timeouts are the first line of defense against slow and
	// idle clients: without them a slowloris peer trickling header bytes —
	// or a connection that simply never sends anything — holds a
	// goroutine+FD forever. WriteTimeout stays 0: verification responses
	// are bounded by -verify-timeout, which cancels the work itself instead
	// of silently snapping the connection under it — and the change feed is
	// a deliberately long-lived streaming response.
	srv := &http.Server{
		Addr:              addr,
		Handler:           server.New(sys.Pipeline(), serverOpts...),
		ReadTimeout:       lt.read,
		ReadHeaderTimeout: lt.readHeader,
		IdleTimeout:       lt.idle,
	}

	if debugAddr != "" {
		dbg := &http.Server{Addr: debugAddr, Handler: obs.DebugHandler(sys.Metrics())}
		go func() {
			logger.Info("debug listener up", "addr", debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug listener failed", "addr", debugAddr, "err", err)
			}
		}()
		go func() {
			<-ctx.Done()
			shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = dbg.Shutdown(shctx)
		}()
	}

	if durable && checkpointEvery > 0 {
		go func() {
			t := time.NewTicker(checkpointEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					// Checkpoints are two-phase and overlap ingestion, so the
					// ticker needs no drain; a tick landing while an admin- or
					// ticker-triggered checkpoint is still writing just skips
					// (the running one covers it).
					switch v, err := sys.Checkpoint(); {
					case errors.Is(err, verifai.ErrCheckpointInFlight):
						logger.Info("periodic checkpoint skipped: one already in flight")
					case err != nil:
						logger.Error("periodic checkpoint failed", "err", err)
					default:
						logger.Info("checkpoint complete", "lake_version", v)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		logger.Info("signal received; draining connections")
		shctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(shctx)
	}()

	err := srv.ListenAndServe()
	if err != nil && err != http.ErrServerClosed {
		sys.Close()
		return err
	}
	if serr := <-shutdownErr; serr != nil {
		logger.Warn("shutdown", "err", serr)
	}
	if durable {
		switch v, cerr := sys.Checkpoint(); {
		case errors.Is(cerr, verifai.ErrCheckpointInFlight):
			// Close waits the running checkpoint out before releasing the
			// data dir; anything it forked too early to cover is in the WAL.
			logger.Info("final checkpoint skipped: one already in flight (Close waits for it; WAL has the remainder)")
		case cerr != nil:
			logger.Error("final checkpoint failed (WAL still has everything)", "err", cerr)
		default:
			logger.Info("final checkpoint complete", "lake_version", v)
		}
	}
	return sys.Close()
}

// runFollow runs a read-only replica: it bootstraps -data-dir from the
// leader's checkpoint (when empty), streams the leader's change feed,
// and serves the same read API — verify, stats, and its own change feed —
// while ingest endpoints answer 421 pointing at the leader.
func runFollow(args []string) error {
	fs := flag.NewFlagSet("follow", flag.ExitOnError)
	leader := fs.String("leader", "", "leader base URL, e.g. http://leader:8080 (required)")
	dataDir := fs.String("data-dir", "", "follower data directory (WAL + checkpoints; required)")
	addr := fs.String("addr", ":8081", "listen address")
	seed := fs.Uint64("seed", 1, "deterministic seed")
	exact := fs.Bool("exact", true, "exact reasoning (no calibrated error injection)")
	shards := fs.Int("shards", 0, "index shards per kind and family (0 = unsharded)")
	quantize := fs.Bool("quantize", false, "int8 scalar-quantize flat vector shards")
	rerankMultiple := fs.Int("rerank-multiple", 0, "quantized re-rank candidate multiple (0 = default 4)")
	ingestQueue := fs.Int("ingest-queue", 0, "bound on the in-flight ingest event queue (0 = default 256)")
	verifyConcurrency := fs.Int("verify-concurrency", 0, "max concurrently admitted verify requests (0 = 4x GOMAXPROCS, <0 = unlimited)")
	verifyTimeout := fs.Duration("verify-timeout", 30*time.Second, "per-request verification deadline (0 = client-bounded only)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "max duration for reading an entire request (0 = unlimited)")
	readHeaderTimeout := fs.Duration("read-header-timeout", 5*time.Second, "max duration for reading request headers (0 = falls back to -read-timeout)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time between requests (0 = falls back to -read-timeout)")
	fsync := fs.String("fsync", "interval", "WAL sync policy: always|interval|none")
	walFormat := fs.String("wal-format", "binary", "WAL record payload encoding for new appends: binary|json (the leader's wire encoding is accepted either way)")
	checkpointEvery := fs.Duration("checkpoint-every", 0, "periodic checkpoint cadence; bounds the follower's own recovery time (0 = only at shutdown)")
	debugAddr := fs.String("debug-addr", "", "side listener for /debug/pprof/*, /debug/traces, and /metrics (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *leader == "" || *dataDir == "" {
		return fmt.Errorf("-leader and -data-dir are required")
	}

	opts := verifai.DefaultOptions(*seed)
	if *exact {
		opts = verifai.ExactOptions(*seed)
	}
	indexTuning{shards: *shards, quantize: *quantize, rerankMultiple: *rerankMultiple}.apply(&opts)
	openOpts := verifai.OpenOptions{Options: opts, Sync: *fsync, WALFormat: *walFormat}
	if *ingestQueue > 0 {
		openOpts.LakeOptions = append(openOpts.LakeOptions, verifai.WithIngestQueue(*ingestQueue))
	}
	sys, err := verifai.OpenFollower(*dataDir, *leader, openOpts)
	if err != nil {
		return err
	}

	serverOpts := []server.Option{
		server.WithVerifyTimeout(*verifyTimeout),
		server.WithFollower(*leader),
		server.WithDurability(
			func() verifai.DurabilityStats { st, _ := sys.Durability(); return st },
			sys.Checkpoint,
		),
		server.WithReplication(func() any { st, _ := sys.Replication(); return st }),
	}
	if *verifyConcurrency != 0 {
		serverOpts = append(serverOpts, server.WithVerifyConcurrency(*verifyConcurrency))
	}
	// A follower re-serves its own change feed (its WAL mirrors the
	// leader's), so replicas can chain and CDC consumers can read replicas.
	if wlog, floor, ckpt, format, ok := sys.ChangeFeed(); ok {
		serverOpts = append(serverOpts, server.WithChangeFeed(server.ChangeFeedConfig{
			Log: wlog, Floor: floor, CheckpointTar: ckpt, Format: format,
		}))
	}

	logger.Info("following", "leader", *leader, "lake_version", sys.LakeVersion(), "addr", *addr)
	return serveLoop(sys, *addr, *debugAddr, serverOpts, listenerTimeouts{
		read: *readTimeout, readHeader: *readHeaderTimeout, idle: *idleTimeout,
	}, *checkpointEvery, true)
}

// openDurable opens (or creates) the durable system under dataDir,
// recovering any previous state. A -lake directory seeds an empty data
// dir through the durable write path (so the seed data is itself logged
// and checkpointed); a non-empty data dir ignores -lake, since its own
// recovered state wins.
func openDurable(dataDir, lakeDir string, seed uint64, exact bool, tune indexTuning, ingestQueue int, fsync, walFormat string) (*verifai.System, error) {
	opts := verifai.DefaultOptions(seed)
	if exact {
		opts = verifai.ExactOptions(seed)
	}
	tune.apply(&opts)
	openOpts := verifai.OpenOptions{Options: opts, Sync: fsync, WALFormat: walFormat}
	if ingestQueue > 0 {
		openOpts.LakeOptions = append(openOpts.LakeOptions, verifai.WithIngestQueue(ingestQueue))
	}
	sys, err := verifai.Open(dataDir, openOpts)
	if err != nil {
		return nil, err
	}
	if sys.LakeVersion() > 0 || lakeDir == "" {
		if lakeDir != "" {
			logger.Info("data dir already has state; ignoring -lake",
				"data_dir", dataDir, "lake_version", sys.LakeVersion())
		} else {
			logger.Info("recovered data dir", "data_dir", dataDir, "lake_version", sys.LakeVersion())
		}
		return sys, nil
	}
	if err := seedFromLake(sys, lakeDir); err != nil {
		sys.Close()
		return nil, fmt.Errorf("seed from -lake: %w", err)
	}
	if v, err := sys.Checkpoint(); err != nil {
		logger.Error("post-seed checkpoint failed (WAL still has everything)", "err", err)
	} else {
		logger.Info("seeded and checkpointed", "data_dir", dataDir, "lake", lakeDir, "lake_version", v)
	}
	return sys, nil
}

// runWaldump streams WAL segments to stdout as JSON lines — one record per
// line in the legacy JSON payload shape — decoding either on-disk payload
// encoding. This is the jq-debugging channel for binary-format logs:
//
//	verifai waldump -data-dir /var/lib/verifai | jq 'select(.kind=="source")'
//
// It opens no Log (no lock, no torn-tail truncation), so it is safe to run
// against a live data directory; a torn tail is reported on stderr and
// skipped, exactly as recovery would drop it.
func runWaldump(args []string) error {
	fs := flag.NewFlagSet("waldump", flag.ExitOnError)
	dataDir := fs.String("data-dir", "", "durable data directory; dumps every segment under <data-dir>/wal in sequence order")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if *dataDir != "" {
		found, err := wal.SegmentFiles(filepath.Join(*dataDir, "wal"))
		if err != nil {
			return err
		}
		paths = append(found, paths...)
	}
	if len(paths) == 0 {
		return fmt.Errorf("nothing to dump: pass -data-dir DIR or segment files")
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)
	for _, path := range paths {
		torn, err := wal.DumpSegment(path, func(rec wal.Record) error { return enc.Encode(rec) })
		if err != nil {
			return err
		}
		if torn > 0 {
			fmt.Fprintf(os.Stderr, "verifai: %s: %d-byte torn tail skipped (partial final append)\n", path, torn)
		}
	}
	return nil
}

// seedFromLake ingests a lakegen directory's contents through the durable
// system's batched write path.
func seedFromLake(sys *verifai.System, lakeDir string) error {
	seedLake, err := lakeio.Load(lakeDir)
	if err != nil {
		return err
	}
	defer seedLake.Close()
	lake := sys.Pipeline().Lake()
	for _, src := range seedLake.Sources() {
		if err := lake.AddSource(src); err != nil {
			return err
		}
	}
	var items []verifai.BatchItem
	for _, tid := range seedLake.TableIDs() {
		t, ok := seedLake.Table(tid)
		if !ok {
			return fmt.Errorf("table %q vanished from seed lake", tid)
		}
		items = append(items, verifai.BatchItem{Table: t})
	}
	for _, did := range seedLake.DocIDs() {
		d, ok := seedLake.Document(did)
		if !ok {
			return fmt.Errorf("document %q vanished from seed lake", did)
		}
		items = append(items, verifai.BatchItem{Doc: d})
	}
	for _, tr := range seedLake.Graph().Triples() {
		tr := tr
		items = append(items, verifai.BatchItem{Triple: &tr})
	}
	results, err := sys.AddBatch(items)
	if err != nil {
		return err
	}
	for _, res := range results {
		if res.Err != nil {
			return res.Err
		}
	}
	return nil
}
