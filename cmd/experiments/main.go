// Command experiments regenerates every experimental result of the paper:
// the no-evidence baseline, Table 1 (retrieval recall), Table 2 (verifier
// accuracy), the Figure 1 and Figure 4 case studies, and the ablations.
//
// Usage:
//
//	experiments [-scale default|paper] [-seed N] [-exp all|baseline|table1|table2|figure1|figure4|ablations]
//	            [-tables N] [-texts N] [-claims N] [-tuples N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		scale  = flag.String("scale", "default", "corpus scale: default (fast) or paper (full Section 4 dimensions)")
		seed   = flag.Uint64("seed", 1, "deterministic seed")
		exp    = flag.String("exp", "all", "which experiment: all, baseline, table1, table2, figure1, figure4, ablations")
		tables = flag.Int("tables", 0, "override number of lake tables")
		texts  = flag.Int("texts", 0, "override number of lake text files")
		claims = flag.Int("claims", 0, "override number of claim tasks")
		tuples = flag.Int("tuples", 0, "override number of tuple tasks")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *scale == "paper" {
		cfg = experiments.PaperScaleConfig()
	}
	cfg.Corpus.Seed = *seed
	if *tables > 0 {
		cfg.Corpus.NumTables = *tables
	}
	if *texts > 0 {
		cfg.Corpus.NumTexts = *texts
	}
	if *claims > 0 {
		cfg.NumClaimTasks = *claims
	}
	if *tuples > 0 {
		cfg.NumTupleTasks = *tuples
	}

	fmt.Printf("building corpus: %d tables, <=%d texts, %d tuple tasks, %d claim tasks (seed %d)\n",
		cfg.Corpus.NumTables, cfg.Corpus.NumTexts, cfg.NumTupleTasks, cfg.NumClaimTasks, *seed)
	env, err := experiments.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats := env.Corpus.Lake.Stats()
	fmt.Printf("lake: %d tables, %d tuples, %d texts, %d triples, %d sources\n\n",
		stats.Tables, stats.Tuples, stats.Docs, stats.Triples, stats.Sources)

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	run("baseline", func() error { return runBaseline(env) })
	run("table1", func() error { return runTable1(env) })
	run("table2", func() error { return runTable2(env) })
	run("figure1", func() error { return runFigure1(env) })
	run("figure4", func() error { return runFigure4(env) })
	run("ablations", func() error { return runAblations(env) })
	os.Exit(0)
}

func runBaseline(env *experiments.Env) error {
	r := env.Baseline()
	fmt.Println("== Baseline: generator accuracy without evidence (paper: 0.52 / 0.54) ==")
	fmt.Printf("  tuple imputation accuracy: %.2f  (n=%d)\n", r.TupleAccuracy, r.TupleN)
	fmt.Printf("  claim judgment accuracy:   %.2f  (n=%d)\n\n", r.ClaimAccuracy, r.ClaimN)
	return nil
}

func runTable1(env *experiments.Env) error {
	r, err := env.Table1()
	if err != nil {
		return err
	}
	fmt.Println("== Table 1: recall on retrieved data instances ==")
	fmt.Println("generated type   retrieved type   recall   paper")
	fmt.Printf("tuple            tuple            %.2f     0.99\n", r.TupleTupleRecall)
	fmt.Printf("tuple            text             %.2f     0.58\n", r.TupleTextRecall)
	fmt.Printf("textual claim    table            %.2f     0.88\n\n", r.ClaimTableRecall)
	return nil
}

func runTable2(env *experiments.Env) error {
	r, err := env.Table2()
	if err != nil {
		return err
	}
	fmt.Println("== Table 2: evaluation on Verifier ==")
	fmt.Println("pair                        ChatGPT   PASTA    paper(ChatGPT/PASTA)")
	fmt.Printf("(tuple, tuple+text)         %.2f      n/a      0.88 / n/a   (%d pairs)\n", r.TupleChatGPT, r.TuplePairs)
	fmt.Printf("(text, relevant table)      %.2f      %.2f     0.75 / 0.89  (%d pairs)\n", r.RelevantTableChatGPT, r.RelevantTablePasta, r.RelevantPairs)
	fmt.Printf("(text, retrieved table)     %.2f      %.2f     0.91 / 0.72  (%d pairs)\n\n", r.RetrievedTableChatGPT, r.RetrievedTablePasta, r.RetrievedPairs)
	return nil
}

func runFigure1(env *experiments.Env) error {
	r, err := env.Figure1()
	if err != nil {
		return err
	}
	fmt.Println("== Figure 1: tuple completion and text generation case studies ==")
	for _, c := range []experiments.CaseOutcome{r.TupleCorrect, r.TupleWrong, r.TextClaim} {
		status := "OK"
		if !c.Match() {
			status = "MISMATCH"
		}
		fmt.Printf("  [%s] %s\n      verdict=%v expected=%v\n      %s\n", status, c.Description, c.Verdict, c.Expected, c.Explanation)
	}
	fmt.Println()
	return nil
}

func runFigure4(env *experiments.Env) error {
	r, err := env.Figure4()
	if err != nil {
		return err
	}
	fmt.Println("== Figure 4: verifying a textual claim using retrieved tables ==")
	fmt.Printf("  claim: %s\n", r.ClaimText)
	fmt.Printf("  E1 (1954 table) retrieved=%v verdict=%v (expected Refuted)\n", r.E1Retrieved, r.E1Verdict)
	fmt.Printf("      explanation: %s\n", r.E1Explanation)
	fmt.Printf("  E2 (1959 table) retrieved=%v verdict=%v (expected Not Related)\n", r.E2Retrieved, r.E2Verdict)
	status := "OK"
	if !r.Final.Match() || !r.E1Retrieved {
		status = "MISMATCH"
	}
	fmt.Printf("  [%s] final verdict=%v (expected Refuted)\n\n", status, r.Final.Verdict)
	return nil
}

func runAblations(env *experiments.Env) error {
	r, err := env.Ablations()
	if err != nil {
		return err
	}
	fmt.Print(r.Format())

	points, err := env.AblateVectorIndex()
	if err != nil {
		return err
	}
	fmt.Println("== Ablation: semantic index family (vector-only claim->table) ==")
	fmt.Println("family  recall@5   mean query latency")
	for _, name := range []string{"flat", "ivf", "lsh"} {
		p := points[name]
		fmt.Printf("%-7s %.2f       %.0f us\n", name, p.Recall, p.QueryMicros)
	}
	fmt.Println()
	return nil
}
