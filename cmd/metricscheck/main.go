// Command metricscheck gates the /metrics surface in CI: it scrapes a
// Prometheus text exposition (from a live server or a file), lints it for
// malformed samples, duplicate series, and broken histogram invariants,
// and fails unless every required metric family is present.
//
// Usage:
//
//	metricscheck -url http://localhost:8080/metrics [-durable] [-follower]
//	metricscheck -file scrape.txt [-require name1,name2,...]
//
// The built-in required set covers every family a serving deployment
// must expose (HTTP, ingest, pipeline, caches, CDC); -durable adds the
// WAL/checkpoint/recovery families and -follower the replication ones.
// -require replaces the built-in set entirely.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// requiredServing is every metric family any serving deployment exposes,
// durable or not. Keep in sync with the README's observability catalog.
var requiredServing = []string{
	"verifai_http_requests_total",
	"verifai_http_request_duration_seconds",
	"verifai_verify_rejected_total",
	"verifai_verify_in_flight",
	"verifai_cdc_stream_records_total",
	"verifai_cdc_streams_active",
	"verifai_ingest_prepare_seconds",
	"verifai_ingest_commit_seconds",
	"verifai_ingest_apply_seconds",
	"verifai_ingest_queue_depth",
	"verifai_stage_duration_seconds",
	"verifai_shard_search_seconds",
	"verifai_verifier_calls_total",
	"verifai_verifier_call_seconds",
	"verifai_result_cache_hits_total",
	"verifai_result_cache_misses_total",
	"verifai_result_cache_invalidations_total",
	"verifai_result_cache_entries",
	"verifai_query_cache_hits_total",
	"verifai_query_cache_misses_total",
}

// requiredDurable is added for -data-dir deployments (WAL + checkpoints).
var requiredDurable = []string{
	"verifai_wal_append_seconds",
	"verifai_wal_fsync_seconds",
	"verifai_wal_appended_records_total",
	"verifai_wal_appended_bytes_total",
	"verifai_wal_rotations_total",
	"verifai_wal_segments",
	"verifai_wal_bytes",
	"verifai_checkpoint_fork_seconds",
	"verifai_checkpoint_write_seconds",
	"verifai_checkpoints_total",
	"verifai_checkpoint_version",
	"verifai_recovery_replayed_records_total",
}

// requiredFollower is added for follower (replica) deployments.
var requiredFollower = []string{
	"verifai_replication_lag_records",
	"verifai_replication_lag_seconds",
	"verifai_replication_applied_records_total",
}

func main() {
	url := flag.String("url", "", "metrics endpoint to scrape, e.g. http://localhost:8080/metrics")
	file := flag.String("file", "", "read the exposition from a file instead of scraping (\"-\" = stdin)")
	durable := flag.Bool("durable", false, "also require the WAL/checkpoint/recovery families")
	follower := flag.Bool("follower", false, "also require the replication families")
	require := flag.String("require", "", "comma-separated required families, replacing the built-in set")
	timeout := flag.Duration("timeout", 10*time.Second, "scrape timeout")
	flag.Parse()

	body, err := fetch(*url, *file, *timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
		os.Exit(1)
	}

	failed := false
	for _, lerr := range obs.Lint(strings.NewReader(body)) {
		fmt.Fprintf(os.Stderr, "metricscheck: %v\n", lerr)
		failed = true
	}

	want := requiredSet(*require, *durable, *follower)
	present := presentFamilies(body)
	var missing []string
	for _, name := range want {
		if !present[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "metricscheck: required metric missing: %s\n", name)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("metricscheck: ok (%d families present, %d required)\n", len(present), len(want))
}

func fetch(url, file string, timeout time.Duration) (string, error) {
	switch {
	case url != "" && file != "":
		return "", fmt.Errorf("-url and -file are mutually exclusive")
	case url != "":
		client := &http.Client{Timeout: timeout}
		resp, err := client.Get(url)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("GET %s: %s", url, resp.Status)
		}
		data, err := io.ReadAll(resp.Body)
		return string(data), err
	case file == "-":
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	case file != "":
		data, err := os.ReadFile(file)
		return string(data), err
	default:
		return "", fmt.Errorf("one of -url or -file is required")
	}
}

func requiredSet(override string, durable, follower bool) []string {
	if override != "" {
		var names []string
		for _, n := range strings.Split(override, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		return names
	}
	names := append([]string(nil), requiredServing...)
	if durable {
		names = append(names, requiredDurable...)
	}
	if follower {
		names = append(names, requiredFollower...)
	}
	return names
}

// presentFamilies collects family names from TYPE headers and samples
// (histogram sample suffixes stripped back to the family name).
func presentFamilies(body string) map[string]bool {
	present := make(map[string]bool)
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 3 && (fields[1] == "TYPE" || fields[1] == "HELP") {
				present[fields[2]] = true
			}
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		present[name] = true
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				present[strings.TrimSuffix(name, suffix)] = true
			}
		}
	}
	return present
}
