package verifai_test

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

// Example reproduces the paper's Figure 4 case: a false claim about the
// 1954 U.S. Open prize total is refuted by the leaderboard table via an
// aggregation, while the 1959 champions table is recognized as unrelated.
func Example() {
	lake := verifai.NewLake()
	lake.AddSource(verifai.Source{ID: "web", Name: "web tables", TrustPrior: 0.8})
	for _, t := range []*verifai.Table{workload.USOpen1954Table(), workload.USOpen1959Table()} {
		t.SourceID = "web"
		if err := lake.AddTable(t); err != nil {
			log.Fatal(err)
		}
	}

	sys, err := verifai.NewSystem(lake, verifai.ExactOptions(42))
	if err != nil {
		log.Fatal(err)
	}

	report, err := sys.VerifyClaimText("fig4",
		"In 1954 u.s. open (golf), the cash prize for tommy bolt, fred haas, and ben hogan was 960 in total.")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verdict:", report.Verdict)
	fmt.Println(report.Evidence[0].Result.Explanation)
	// Output:
	// verdict: Refuted
	// The money for tommy bolt, fred haas, and ben hogan was 570, 570, 570 respectively, so the sum is 1710, not 960.
}

// ExampleSystem_VerifyImputedTuple shows the Figure 1(a) flow: a generated
// tuple with a wrong incumbent is refuted by the lake.
func ExampleSystem_VerifyImputedTuple() {
	lake := verifai.NewLake()
	lake.AddSource(verifai.Source{ID: "web", Name: "web tables", TrustPrior: 0.8})
	ohio := workload.OhioDistrictsTable()
	ohio.SourceID = "web"
	if err := lake.AddTable(ohio); err != nil {
		log.Fatal(err)
	}

	sys, err := verifai.NewSystem(lake, verifai.ExactOptions(7))
	if err != nil {
		log.Fatal(err)
	}

	tp, _ := ohio.TupleAt(2) // ohio's 3rd congressional district
	imputed := tp.WithValue("incumbent", "dave hobson")
	report, err := sys.VerifyImputedTuple("fig1a", imputed, "incumbent")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verdict:", report.Verdict)
	fmt.Println(report.Evidence[0].Result.Explanation)
	// Output:
	// verdict: Refuted
	// The evidence tuple shows incumbent = mike turner, not dave hobson.
}
